/**
 * @file
 * Checkpoint format implementation.
 */

#include "io/checkpoint.hh"

#include <cstring>

#include "nn/model_zoo.hh"

namespace twoinone {
namespace checkpoint {

namespace {

const char kMagic[8] = {'2', 'I', 'N', '1', 'C', 'K', 'P', 'T'};
constexpr uint32_t kFlagEngineCache = 1u << 0;
constexpr uint32_t kFlagTuning = 1u << 1;
constexpr uint32_t kFlagEnginePacks = 1u << 2;

/** Pack a 0/1 float mask into bits (8 elements per byte). */
std::vector<char>
packMask(const Tensor &mask)
{
    std::vector<char> out((mask.size() + 7) / 8, 0);
    for (size_t i = 0; i < mask.size(); ++i) {
        if (mask[i] != 0.0f)
            out[i >> 3] |= static_cast<char>(1 << (i & 7));
    }
    return out;
}

/** Unpack a bit mask into a 0/1 float tensor of @p shape. */
Tensor
unpackMask(const std::vector<char> &bytes, const std::vector<int> &shape,
           size_t count)
{
    if (bytes.size() != (count + 7) / 8)
        throw io::CheckpointError(
            "corrupt checkpoint: STE mask size mismatch");
    Tensor mask(shape);
    for (size_t i = 0; i < count; ++i)
        mask[i] = (bytes[i >> 3] >> (i & 7)) & 1 ? 1.0f : 0.0f;
    return mask;
}

void
writeStateEntry(io::Writer &w, const StateEntry &e)
{
    w.str(e.name);
    if (e.tensor) {
        w.u8(0);
        w.tensor(*e.tensor);
    } else if (e.floats) {
        w.u8(1);
        w.f32Vec(e.floats->data(), e.floats->size());
    } else if (e.flags) {
        w.u8(2);
        w.u8Vec(e.flags->data(), e.flags->size());
    } else if (e.flag) {
        w.u8(3);
        w.u8(*e.flag ? 1 : 0);
    } else {
        TWOINONE_PANIC("state entry \"", e.name, "\" has no payload");
    }
}

void
writeCodes(io::Writer &w, const QuantTensor &q)
{
    w.intVec(q.shape);
    w.f32(q.scale);
    w.i32(q.bits);
    w.u8(q.isSigned ? 1 : 0);
    w.i32Vec(q.codes.data(), q.codes.size());
}

void
writePack(io::Writer &w, const gemm::PackedIntWeights &p)
{
    w.i32(p.m);
    w.i32(p.k);
    w.i32(p.bits);
    w.i32(p.tiles);
    w.i32(p.groups8);
    w.i32(p.groups16);
    w.u8Vec(reinterpret_cast<const char *>(p.p8.data()),
            p.p8.size());
    w.i16Vec(p.p16.data(), p.p16.size());
    w.i64Vec(p.rowSum.data(), p.rowSum.size());
}

gemm::PackedIntWeights
readPack(io::Reader &r)
{
    gemm::PackedIntWeights p;
    p.m = r.i32();
    p.k = r.i32();
    p.bits = r.i32();
    p.tiles = r.i32();
    p.groups8 = r.i32();
    p.groups16 = r.i32();
    std::vector<char> p8 = r.u8Vec();
    p.p8.resize(p8.size());
    if (!p8.empty())
        std::memcpy(p.p8.data(), p8.data(), p8.size());
    p.p16 = r.i16Vec();
    p.rowSum = r.i64Vec();
    // rowSum is tile-padded: one slot per packed row, not per real
    // output channel.
    if (p.m < 0 || p.k < 0 || p.bits < 1 || p.bits > 16 ||
        p.tiles < 0 || p.groups8 < 0 || p.groups16 < 0 ||
        p.tiles < (p.m + gemm::kPackTileM - 1) / gemm::kPackTileM ||
        p.rowSum.size() !=
            static_cast<size_t>(p.tiles) * gemm::kPackTileM)
        throw io::CheckpointError(
            "corrupt checkpoint: invalid tile-pack geometry");
    return p;
}

QuantTensor
readCodes(io::Reader &r)
{
    QuantTensor q;
    q.shape = r.intVec();
    q.scale = r.f32();
    q.bits = r.i32();
    q.isSigned = r.u8() != 0;
    q.codes = r.i32Vec();
    // Rank-0 shapes hold zero elements — seed the product like
    // Reader::tensor does, or a crafted one-code cell would pass
    // validation and overflow the unpacked mask tensor.
    size_t expect = q.shape.empty() ? 0 : 1;
    for (int d : q.shape) {
        if (d <= 0)
            throw io::CheckpointError(
                "corrupt checkpoint: non-positive code-tensor dim");
        expect *= static_cast<size_t>(d);
    }
    if (q.codes.size() != expect)
        throw io::CheckpointError("corrupt checkpoint: code payload "
                                  "does not match its shape");
    return q;
}

} // namespace

void
save(const std::string &path, Network &net, RpsEngine *engine,
     const SaveOptions &opts)
{
    bool with_cache = engine != nullptr && opts.includeEngineCache;
    bool with_packs = with_cache && opts.includeEnginePacks;

    io::Writer payload;

    // ARCH ----------------------------------------------------------
    NetworkSpec spec = net.spec();
    payload.intVec(spec.precisions);
    payload.u32(static_cast<uint32_t>(spec.layers.size()));
    for (const LayerSpec &ls : spec.layers) {
        payload.str(ls.kind);
        payload.intVec(ls.args);
    }

    // STATE ---------------------------------------------------------
    StateDict dict;
    net.collectState(dict);
    payload.u32(static_cast<uint32_t>(dict.size()));
    for (const StateEntry &e : dict)
        writeStateEntry(payload, e);

    // CACHE ---------------------------------------------------------
    if (with_cache) {
        const std::vector<int> &bits = engine->set().bits();
        payload.intVec(bits);
        payload.u32(static_cast<uint32_t>(engine->numQuantLayers()));
        for (size_t l = 0; l < engine->numQuantLayers(); ++l) {
            for (int b : bits) {
                // codesFor/steMaskFor bring a stale cell current
                // first, so the exported cache always matches the
                // exported master weights.
                const QuantTensor &codes = engine->codesFor(l, b);
                writeCodes(payload, codes);
                std::vector<char> packed =
                    packMask(engine->steMaskFor(l, b));
                payload.u8Vec(packed.data(), packed.size());
            }
        }
    }

    // PACKS ---------------------------------------------------------
    if (with_packs) {
        const std::vector<int> &bits = engine->set().bits();
        for (size_t l = 0; l < engine->numQuantLayers(); ++l)
            for (int b : bits)
                writePack(payload, engine->packedFor(l, b));
    }

    // TUNING --------------------------------------------------------
    if (opts.tuning != nullptr)
        opts.tuning->write(payload);

    // Assemble: header | payload | checksum. The checksum covers the
    // header as well — a flipped flags word must read as corruption,
    // not as a silently different (e.g. cache-less) artifact.
    uint32_t flags = (with_cache ? kFlagEngineCache : 0) |
                     (with_packs ? kFlagEnginePacks : 0) |
                     (opts.tuning != nullptr ? kFlagTuning : 0);
    io::Writer file;
    for (char c : kMagic)
        file.u8(static_cast<uint8_t>(c));
    file.u32(kFormatVersion);
    file.u32(flags);
    std::vector<uint8_t> bytes = file.bytes();
    bytes.insert(bytes.end(), payload.bytes().begin(),
                 payload.bytes().end());
    uint64_t hash = io::fnv1a(bytes.data(), bytes.size());
    io::Writer trailer;
    trailer.u64(hash);
    bytes.insert(bytes.end(), trailer.bytes().begin(),
                 trailer.bytes().end());
    // Atomic replace: a crash (or injected fault) mid-save must never
    // leave a torn artifact at the target path — serving fleets reload
    // checkpoints while the trainer overwrites them.
    io::writeFileAtomic(path, bytes);
}

Checkpoint
Checkpoint::read(const std::string &path)
{
    std::vector<uint8_t> bytes = io::readFile(path);
    constexpr size_t header = sizeof(kMagic) + 2 * sizeof(uint32_t);
    constexpr size_t trailer = sizeof(uint64_t);
    if (bytes.size() < header + trailer)
        throw io::CheckpointError(path + " is not a checkpoint "
                                         "(too small)");
    if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
        throw io::CheckpointError(path + " is not a checkpoint "
                                         "(bad magic)");
    uint32_t version, flags;
    std::memcpy(&version, bytes.data() + sizeof(kMagic),
                sizeof(version));
    std::memcpy(&flags, bytes.data() + sizeof(kMagic) + sizeof(version),
                sizeof(flags));
    if (version != kFormatVersion)
        throw io::CheckpointError(
            "unsupported checkpoint format version " +
            std::to_string(version) + " (this build reads version " +
            std::to_string(kFormatVersion) + ")");

    const uint8_t *payload = bytes.data() + header;
    size_t payload_size = bytes.size() - header - trailer;
    uint64_t stored_hash;
    std::memcpy(&stored_hash, bytes.data() + header + payload_size,
                sizeof(stored_hash));
    if (io::fnv1a(bytes.data(), header + payload_size) != stored_hash)
        throw io::CheckpointError(path +
                                  ": payload corrupted "
                                  "(checksum mismatch)");

    io::Reader r(payload, payload_size);
    Checkpoint ckpt;

    // Struct counts come from the file; before sizing containers by
    // them, require that the remaining payload could plausibly hold
    // that many records (>= @p min_bytes each) — a crafted count must
    // throw, not commit gigabytes. (Reader::count applies the same
    // guard to element vectors.)
    auto checkedCount = [&r](uint32_t n, size_t min_bytes,
                             const char *what) {
        if (static_cast<size_t>(n) > r.remaining() / min_bytes)
            throw io::CheckpointError(
                "corrupt checkpoint: " + std::string(what) +
                " count " + std::to_string(n) +
                " exceeds the remaining payload");
        return n;
    };

    // ARCH ----------------------------------------------------------
    ckpt.spec_.precisions = r.intVec();
    // A layer spec is at least an empty kind string + empty args
    // vector (two u32 counts).
    uint32_t nlayers = checkedCount(r.u32(), 8, "layer spec");
    ckpt.spec_.layers.reserve(nlayers);
    for (uint32_t i = 0; i < nlayers; ++i) {
        LayerSpec ls;
        ls.kind = r.str();
        ls.args = r.intVec();
        ckpt.spec_.layers.push_back(std::move(ls));
    }

    // STATE ---------------------------------------------------------
    uint32_t nentries = r.u32();
    for (uint32_t i = 0; i < nentries; ++i) {
        std::string name = r.str();
        Blob blob;
        blob.dtype = r.u8();
        switch (blob.dtype) {
        case 0:
            blob.tensor = r.tensor();
            break;
        case 1:
            blob.floats = r.f32Vec();
            break;
        case 2:
            blob.flags = r.u8Vec();
            break;
        case 3:
            blob.flag = r.u8() != 0;
            break;
        default:
            throw io::CheckpointError(
                "corrupt checkpoint: unknown state dtype " +
                std::to_string(blob.dtype) + " for \"" + name + "\"");
        }
        ckpt.blobs_.emplace(std::move(name), std::move(blob));
    }

    // CACHE ---------------------------------------------------------
    if (flags & kFlagEngineCache) {
        ckpt.cacheBits_ = r.intVec();
        // Each cached layer carries >= one cell: shape vec + scale +
        // bits + signedness + two payload counts.
        uint32_t ncache_layers =
            checkedCount(r.u32(), 29, "cache layer");
        ckpt.cells_.resize(ncache_layers);
        for (uint32_t l = 0; l < ncache_layers; ++l) {
            ckpt.cells_[l].reserve(ckpt.cacheBits_.size());
            for (size_t p = 0; p < ckpt.cacheBits_.size(); ++p) {
                CacheCell cell;
                cell.codes = readCodes(r);
                cell.maskBytes = r.u8Vec();
                ckpt.cells_[l].push_back(std::move(cell));
            }
        }
    }

    // PACKS ---------------------------------------------------------
    if (flags & kFlagEnginePacks) {
        if (!(flags & kFlagEngineCache))
            throw io::CheckpointError(
                "corrupt checkpoint: pack section without a cache "
                "section");
        ckpt.packs_.resize(ckpt.cells_.size());
        for (size_t l = 0; l < ckpt.cells_.size(); ++l) {
            ckpt.packs_[l].reserve(ckpt.cacheBits_.size());
            for (size_t p = 0; p < ckpt.cacheBits_.size(); ++p) {
                gemm::PackedIntWeights pack = readPack(r);
                if (pack.bits != ckpt.cacheBits_[p])
                    throw io::CheckpointError(
                        "corrupt checkpoint: pack precision does not "
                        "match its cache column");
                ckpt.packs_[l].push_back(std::move(pack));
            }
        }
    }

    // TUNING --------------------------------------------------------
    if (flags & kFlagTuning)
        ckpt.tuning_ = std::make_unique<tune::TuningArtifact>(
            tune::TuningArtifact::read(r));

    if (!r.atEnd())
        throw io::CheckpointError(
            path + ": " + std::to_string(r.remaining()) +
            " unparsed trailing payload bytes (corrupt or "
            "mis-framed artifact)");
    return ckpt;
}

Network
Checkpoint::instantiate() const
{
    Network net = buildFromSpec(spec_);
    StateDict dict;
    net.collectState(dict);
    for (const StateEntry &e : dict) {
        auto it = blobs_.find(e.name);
        if (it == blobs_.end())
            throw io::CheckpointError("checkpoint is missing state \"" +
                                      e.name + "\"");
        const Blob &b = it->second;
        if (e.tensor) {
            if (b.dtype != 0 || b.tensor.shape() != e.tensor->shape())
                throw io::CheckpointError("checkpoint state \"" +
                                          e.name +
                                          "\" does not match the "
                                          "rebuilt layer");
            *e.tensor = b.tensor;
        } else if (e.floats) {
            if (b.dtype != 1)
                throw io::CheckpointError("checkpoint state \"" +
                                          e.name + "\" has wrong type");
            *e.floats = b.floats;
        } else if (e.flags) {
            if (b.dtype != 2)
                throw io::CheckpointError("checkpoint state \"" +
                                          e.name + "\" has wrong type");
            *e.flags = b.flags;
        } else if (e.flag) {
            if (b.dtype != 3)
                throw io::CheckpointError("checkpoint state \"" +
                                          e.name + "\" has wrong type");
            *e.flag = b.flag;
        }
    }
    // Vector/flag blobs were restored at whatever length the artifact
    // carried; a checksum-valid but internally inconsistent artifact
    // must fail here, not read out of bounds at inference.
    std::string err = net.checkState();
    if (!err.empty())
        throw io::CheckpointError("checkpoint state invalid: " + err);
    return net;
}

std::unique_ptr<RpsEngine>
Checkpoint::restoreEngine(Network &net) const &
{
    // consume = false leaves the cells untouched, so the cast does
    // not break the const contract.
    return const_cast<Checkpoint *>(this)->restoreEngineImpl(
        net, /*consume=*/false);
}

std::unique_ptr<RpsEngine>
Checkpoint::restoreEngine(Network &net) &&
{
    return restoreEngineImpl(net, /*consume=*/true);
}

std::unique_ptr<RpsEngine>
Checkpoint::restoreEngineImpl(Network &net, bool consume)
{
    if (!hasEngineCache())
        return nullptr;
    PrecisionSet cache_set = precisionSetFromSpec(cacheBits_);
    for (int b : cacheBits_) {
        if (!net.precisionSet().contains(b))
            throw io::CheckpointError(
                "checkpoint cache precision " + std::to_string(b) +
                " is not in the network's bound set");
    }
    auto engine = std::make_unique<RpsEngine>(
        net, std::move(cache_set), RpsEngine::DeferBuild{});
    if (engine->numQuantLayers() != cells_.size())
        throw io::CheckpointError(
            "checkpoint cache covers " + std::to_string(cells_.size()) +
            " weight layers, network has " +
            std::to_string(engine->numQuantLayers()));
    std::vector<WeightQuantizedLayer *> wlayers =
        net.weightQuantizedLayers();
    for (size_t l = 0; l < cells_.size(); ++l) {
        for (size_t p = 0; p < cacheBits_.size(); ++p) {
            CacheCell &cell = cells_[l][p];
            if (cell.codes.size() != wlayers[l]->masterWeight().size() ||
                cell.codes.bits != cacheBits_[p])
                throw io::CheckpointError(
                    "checkpoint cache cell does not match layer " +
                    std::to_string(l));
            Tensor mask = unpackMask(cell.maskBytes, cell.codes.shape,
                                     cell.codes.size());
            if (!packs_.empty()) {
                gemm::PackedIntWeights &pk = packs_[l][p];
                int m = cell.codes.shape.empty() ? 0
                                                 : cell.codes.shape[0];
                int k = m > 0 ? static_cast<int>(cell.codes.size()) / m
                              : 0;
                if (pk.m != m || pk.k != k ||
                    pk.bits != cell.codes.bits)
                    throw io::CheckpointError(
                        "checkpoint pack does not match cache cell "
                        "of layer " +
                        std::to_string(l));
                engine->importCell(l, p,
                                   consume ? std::move(cell.codes)
                                           : cell.codes,
                                   std::move(mask),
                                   consume ? std::move(pk) : pk);
            } else {
                engine->importCell(l, p,
                                   consume ? std::move(cell.codes)
                                           : cell.codes,
                                   std::move(mask));
            }
        }
    }
    return engine;
}

} // namespace checkpoint
} // namespace twoinone
