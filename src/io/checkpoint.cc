/**
 * @file
 * Checkpoint format implementation (version 2: section directory).
 */

#include "io/checkpoint.hh"

#include <array>
#include <cstring>

#include "nn/model_zoo.hh"

namespace twoinone {
namespace checkpoint {

namespace {

const char kMagic[8] = {'2', 'I', 'N', '1', 'C', 'K', 'P', 'T'};
constexpr uint32_t kFlagEngineCache = 1u << 0;
constexpr uint32_t kFlagTuning = 1u << 1;
constexpr uint32_t kFlagEnginePacks = 1u << 2;
constexpr uint32_t kFlagMomentum = 1u << 3;

constexpr const char *kTagArch = "ARCH";
constexpr const char *kTagState = "STAT";
constexpr const char *kTagMomentum = "MOMN";
constexpr const char *kTagCacheBits = "CBIT";
constexpr const char *kTagCell = "CELL";
constexpr const char *kTagPack = "PACK";
constexpr const char *kTagTuning = "TUNE";

/** Pack a 0/1 float mask into bits (8 elements per byte). */
std::vector<char>
packMask(const Tensor &mask)
{
    std::vector<char> out((mask.size() + 7) / 8, 0);
    for (size_t i = 0; i < mask.size(); ++i) {
        if (mask[i] != 0.0f)
            out[i >> 3] |= static_cast<char>(1 << (i & 7));
    }
    return out;
}

/** Unpack a bit mask into a 0/1 float tensor of @p shape. */
Tensor
unpackMask(const std::vector<char> &bytes, const std::vector<int> &shape,
           size_t count)
{
    if (bytes.size() != (count + 7) / 8)
        throw io::CheckpointError(
            "corrupt checkpoint: STE mask size mismatch");
    Tensor mask(shape);
    for (size_t i = 0; i < count; ++i)
        mask[i] = (bytes[i >> 3] >> (i & 7)) & 1 ? 1.0f : 0.0f;
    return mask;
}

void
writeStateEntry(io::Writer &w, const StateEntry &e)
{
    w.str(e.name);
    if (e.tensor) {
        w.u8(0);
        w.tensor(*e.tensor);
    } else if (e.floats) {
        w.u8(1);
        w.f32Vec(e.floats->data(), e.floats->size());
    } else if (e.flags) {
        w.u8(2);
        w.u8Vec(e.flags->data(), e.flags->size());
    } else if (e.flag) {
        w.u8(3);
        w.u8(*e.flag ? 1 : 0);
    } else {
        TWOINONE_PANIC("state entry \"", e.name, "\" has no payload");
    }
}

void
writeCodes(io::Writer &w, const QuantTensor &q)
{
    w.intVec(q.shape);
    w.f32(q.scale);
    w.i32(q.bits);
    w.u8(q.isSigned ? 1 : 0);
    w.i32Vec(q.codes.data(), q.codes.size());
}

void
writePack(io::Writer &w, const gemm::PackedIntWeights &p)
{
    w.i32(p.m);
    w.i32(p.k);
    w.i32(p.bits);
    w.i32(p.tiles);
    w.i32(p.groups8);
    w.i32(p.groups16);
    w.u8Vec(reinterpret_cast<const char *>(p.p8.data()),
            p.p8.size());
    w.i16Vec(p.p16.data(), p.p16.size());
    w.i64Vec(p.rowSum.data(), p.rowSum.size());
}

gemm::PackedIntWeights
readPack(io::Reader &r)
{
    gemm::PackedIntWeights p;
    p.m = r.i32();
    p.k = r.i32();
    p.bits = r.i32();
    p.tiles = r.i32();
    p.groups8 = r.i32();
    p.groups16 = r.i32();
    std::vector<char> p8 = r.u8Vec();
    p.p8.resize(p8.size());
    if (!p8.empty())
        std::memcpy(p.p8.data(), p8.data(), p8.size());
    p.p16 = r.i16Vec();
    p.rowSum = r.i64Vec();
    // rowSum is tile-padded: one slot per packed row, not per real
    // output channel.
    if (p.m < 0 || p.k < 0 || p.bits < 1 || p.bits > 16 ||
        p.tiles < 0 || p.groups8 < 0 || p.groups16 < 0 ||
        p.tiles < (p.m + gemm::kPackTileM - 1) / gemm::kPackTileM ||
        p.rowSum.size() !=
            static_cast<size_t>(p.tiles) * gemm::kPackTileM)
        throw io::CheckpointError(
            "corrupt checkpoint: invalid tile-pack geometry");
    return p;
}

QuantTensor
readCodes(io::Reader &r)
{
    QuantTensor q;
    q.shape = r.intVec();
    q.scale = r.f32();
    q.bits = r.i32();
    q.isSigned = r.u8() != 0;
    q.codes = r.i32Vec();
    // Rank-0 shapes hold zero elements — seed the product like
    // Reader::tensor does, or a crafted one-code cell would pass
    // validation and overflow the unpacked mask tensor.
    size_t expect = q.shape.empty() ? 0 : 1;
    for (int d : q.shape) {
        if (d <= 0)
            throw io::CheckpointError(
                "corrupt checkpoint: non-positive code-tensor dim");
        expect *= static_cast<size_t>(d);
    }
    if (q.codes.size() != expect)
        throw io::CheckpointError("corrupt checkpoint: code payload "
                                  "does not match its shape");
    return q;
}

/** One section being assembled by save(). */
struct SectionBuf
{
    std::array<char, 4> tag;
    int32_t a;
    int32_t b;
    io::Writer w;
};

SectionBuf
makeSection(const char *tag, int32_t a = -1, int32_t b = -1)
{
    SectionBuf s;
    std::memcpy(s.tag.data(), tag, 4);
    s.a = a;
    s.b = b;
    return s;
}

/** A parsed section must have been consumed exactly. */
void
requireSectionEnd(const io::Reader &r, const char *tag)
{
    if (!r.atEnd())
        throw io::CheckpointError(
            "corrupt checkpoint: " + std::to_string(r.remaining()) +
            " trailing bytes in section " + std::string(tag, 4));
}

/** The directory entry at @p idx, which must carry @p tag (and match
 * @p a / @p b when >= 0) — the eager reader enforces the canonical
 * section order so a structurally scrambled artifact fails loudly. */
const io::SectionInfo &
expectSection(const io::SectionReader &sr, size_t idx, const char *tag,
              int32_t a = -1, int32_t b = -1)
{
    if (idx >= sr.sections().size())
        throw io::CheckpointError("corrupt checkpoint: missing " +
                                  std::string(tag, 4) + " section");
    const io::SectionInfo &s = sr.sections()[idx];
    if (!s.is(tag) || (a >= 0 && s.a != a) || (b >= 0 && s.b != b))
        throw io::CheckpointError(
            "corrupt checkpoint: unexpected section " +
            std::string(s.tag, 4) + " at index " + std::to_string(idx) +
            " (wanted " + std::string(tag, 4) + ")");
    return s;
}

} // namespace

void
save(const std::string &path, Network &net, RpsEngine *engine,
     const SaveOptions &opts)
{
    bool with_cache = engine != nullptr && opts.includeEngineCache;
    bool with_packs = with_cache && opts.includeEnginePacks;
    bool with_momentum = opts.optimizer != nullptr;

    std::vector<SectionBuf> secs;

    // ARCH ----------------------------------------------------------
    {
        SectionBuf s = makeSection(kTagArch);
        NetworkSpec spec = net.spec();
        s.w.intVec(spec.precisions);
        s.w.u32(static_cast<uint32_t>(spec.layers.size()));
        for (const LayerSpec &ls : spec.layers) {
            s.w.str(ls.kind);
            s.w.intVec(ls.args);
        }
        secs.push_back(std::move(s));
    }

    // STAT ----------------------------------------------------------
    {
        SectionBuf s = makeSection(kTagState);
        StateDict dict;
        net.collectState(dict);
        s.w.u32(static_cast<uint32_t>(dict.size()));
        for (const StateEntry &e : dict)
            writeStateEntry(s.w, e);
        secs.push_back(std::move(s));
    }

    // MOMN ----------------------------------------------------------
    if (with_momentum) {
        SectionBuf s = makeSection(kTagMomentum);
        std::vector<Parameter *> params = net.parameters();
        std::vector<Tensor> vel =
            opts.optimizer->exportVelocity(params);
        s.w.u32(static_cast<uint32_t>(vel.size()));
        for (const Tensor &v : vel)
            s.w.tensor(v);
        secs.push_back(std::move(s));
    }

    // CBIT + CELL ---------------------------------------------------
    if (with_cache) {
        const std::vector<int> &bits = engine->set().bits();
        {
            SectionBuf s = makeSection(kTagCacheBits);
            s.w.intVec(bits);
            s.w.u32(static_cast<uint32_t>(engine->numQuantLayers()));
            secs.push_back(std::move(s));
        }
        for (size_t l = 0; l < engine->numQuantLayers(); ++l) {
            for (int b : bits) {
                SectionBuf s = makeSection(
                    kTagCell, static_cast<int32_t>(l), b);
                // codesFor/steMaskFor bring a stale cell current
                // first, so the exported cache always matches the
                // exported master weights.
                writeCodes(s.w, engine->codesFor(l, b));
                std::vector<char> packed =
                    packMask(engine->steMaskFor(l, b));
                s.w.u8Vec(packed.data(), packed.size());
                secs.push_back(std::move(s));
            }
        }
    }

    // PACK ----------------------------------------------------------
    if (with_packs) {
        const std::vector<int> &bits = engine->set().bits();
        for (size_t l = 0; l < engine->numQuantLayers(); ++l) {
            for (int b : bits) {
                SectionBuf s = makeSection(
                    kTagPack, static_cast<int32_t>(l), b);
                writePack(s.w, engine->packedFor(l, b));
                secs.push_back(std::move(s));
            }
        }
    }

    // TUNE ----------------------------------------------------------
    if (opts.tuning != nullptr) {
        SectionBuf s = makeSection(kTagTuning);
        opts.tuning->write(s.w);
        secs.push_back(std::move(s));
    }

    // Assemble: header | directory | directory checksum | sections.
    // Every byte lands under a checksum: the front matter (including
    // the flags word) under the directory hash, every payload byte
    // under its section hash — a flip anywhere reads as corruption.
    uint32_t flags = (with_cache ? kFlagEngineCache : 0) |
                     (with_packs ? kFlagEnginePacks : 0) |
                     (opts.tuning != nullptr ? kFlagTuning : 0) |
                     (with_momentum ? kFlagMomentum : 0);
    io::Writer front;
    for (char c : kMagic)
        front.u8(static_cast<uint8_t>(c));
    front.u32(kFormatVersion);
    front.u32(flags);
    front.u32(static_cast<uint32_t>(secs.size()));
    uint64_t offset = io::kStreamHeaderBytes + sizeof(uint32_t) +
                      secs.size() * io::kDirEntryBytes +
                      sizeof(uint64_t);
    uint64_t total = offset;
    for (const SectionBuf &s : secs) {
        for (char c : s.tag)
            front.u8(static_cast<uint8_t>(c));
        front.i32(s.a);
        front.i32(s.b);
        front.u64(offset);
        front.u64(s.w.size());
        front.u64(io::fnv1a(s.w.bytes().data(), s.w.size()));
        offset += s.w.size();
        total += s.w.size();
    }
    uint64_t dir_hash =
        io::fnv1a(front.bytes().data(), front.size());
    front.u64(dir_hash);

    std::vector<uint8_t> bytes = front.bytes();
    bytes.reserve(total);
    for (const SectionBuf &s : secs)
        bytes.insert(bytes.end(), s.w.bytes().begin(),
                     s.w.bytes().end());
    // Atomic replace: a crash (or injected fault) mid-save must never
    // leave a torn artifact at the target path — serving fleets reload
    // checkpoints while the trainer overwrites them.
    io::writeFileAtomic(path, bytes);
}

Checkpoint
Checkpoint::parseEager(const io::SectionReader &sr)
{
    Checkpoint ckpt;
    const uint32_t flags = sr.flags();
    size_t idx = 0;

    // ARCH ----------------------------------------------------------
    {
        std::vector<uint8_t> bytes =
            sr.read(expectSection(sr, idx++, kTagArch));
        io::Reader r(bytes.data(), bytes.size());
        ckpt.spec_.precisions = r.intVec();
        // A layer spec is at least an empty kind string + empty args
        // vector (two u32 counts).
        uint32_t nlayers = r.u32();
        if (static_cast<size_t>(nlayers) > r.remaining() / 8)
            throw io::CheckpointError(
                "corrupt checkpoint: layer spec count " +
                std::to_string(nlayers) +
                " exceeds the remaining payload");
        ckpt.spec_.layers.reserve(nlayers);
        for (uint32_t i = 0; i < nlayers; ++i) {
            LayerSpec ls;
            ls.kind = r.str();
            ls.args = r.intVec();
            ckpt.spec_.layers.push_back(std::move(ls));
        }
        requireSectionEnd(r, kTagArch);
    }

    // STAT ----------------------------------------------------------
    {
        std::vector<uint8_t> bytes =
            sr.read(expectSection(sr, idx++, kTagState));
        io::Reader r(bytes.data(), bytes.size());
        uint32_t nentries = r.u32();
        for (uint32_t i = 0; i < nentries; ++i) {
            std::string name = r.str();
            Blob blob;
            blob.dtype = r.u8();
            switch (blob.dtype) {
            case 0:
                blob.tensor = r.tensor();
                break;
            case 1:
                blob.floats = r.f32Vec();
                break;
            case 2:
                blob.flags = r.u8Vec();
                break;
            case 3:
                blob.flag = r.u8() != 0;
                break;
            default:
                throw io::CheckpointError(
                    "corrupt checkpoint: unknown state dtype " +
                    std::to_string(blob.dtype) + " for \"" + name +
                    "\"");
            }
            ckpt.blobs_.emplace(std::move(name), std::move(blob));
        }
        requireSectionEnd(r, kTagState);
    }

    // MOMN ----------------------------------------------------------
    if (flags & kFlagMomentum) {
        std::vector<uint8_t> bytes =
            sr.read(expectSection(sr, idx++, kTagMomentum));
        io::Reader r(bytes.data(), bytes.size());
        // A velocity tensor is at least an empty shape vec (u32) +
        // an element count (u64).
        uint32_t count = r.u32();
        if (static_cast<size_t>(count) > r.remaining() / 12)
            throw io::CheckpointError(
                "corrupt checkpoint: velocity count " +
                std::to_string(count) +
                " exceeds the remaining payload");
        ckpt.momentum_.reserve(count);
        for (uint32_t i = 0; i < count; ++i)
            ckpt.momentum_.push_back(r.tensor());
        ckpt.hasMomentum_ = true;
        requireSectionEnd(r, kTagMomentum);
    }

    // CBIT (cache metadata; cells stay on disk here) ----------------
    if (flags & kFlagEngineCache) {
        std::vector<uint8_t> bytes =
            sr.read(expectSection(sr, idx++, kTagCacheBits));
        io::Reader r(bytes.data(), bytes.size());
        ckpt.cacheBits_ = r.intVec();
        uint32_t nlayers = r.u32();
        requireSectionEnd(r, kTagCacheBits);
        if (ckpt.cacheBits_.empty())
            throw io::CheckpointError(
                "corrupt checkpoint: cache section with no "
                "precisions");
        // The directory must list exactly one CELL per (layer,
        // precision) in canonical order — validated structurally
        // here (cheap), hydrated by the eager reader or the lazy
        // engine later.
        if (static_cast<size_t>(nlayers) >
            sr.sections().size() / ckpt.cacheBits_.size())
            throw io::CheckpointError(
                "corrupt checkpoint: cache layer count " +
                std::to_string(nlayers) +
                " exceeds the section directory");
        ckpt.cells_.resize(nlayers);
        for (uint32_t l = 0; l < nlayers; ++l)
            for (int b : ckpt.cacheBits_)
                expectSection(sr, idx++, kTagCell,
                              static_cast<int32_t>(l), b);
        if (flags & kFlagEnginePacks) {
            for (uint32_t l = 0; l < nlayers; ++l)
                for (int b : ckpt.cacheBits_)
                    expectSection(sr, idx++, kTagPack,
                                  static_cast<int32_t>(l), b);
        }
    } else if (flags & kFlagEnginePacks) {
        throw io::CheckpointError(
            "corrupt checkpoint: pack section without a cache "
            "section");
    }

    // TUNE ----------------------------------------------------------
    if (flags & kFlagTuning) {
        std::vector<uint8_t> bytes =
            sr.read(expectSection(sr, idx++, kTagTuning));
        io::Reader r(bytes.data(), bytes.size());
        ckpt.tuning_ = std::make_unique<tune::TuningArtifact>(
            tune::TuningArtifact::read(r));
        requireSectionEnd(r, kTagTuning);
    }

    if (idx != sr.sections().size())
        throw io::CheckpointError(
            "corrupt checkpoint: " +
            std::to_string(sr.sections().size() - idx) +
            " unexpected extra sections");
    return ckpt;
}

Checkpoint
Checkpoint::read(const std::string &path)
{
    io::SectionReader sr(path);
    Checkpoint ckpt = parseEager(sr);

    // Hydrate every cell (and pack) eagerly: after this walk every
    // section checksum in the file has been verified — the eager
    // reader keeps format 1's whole-file integrity guarantee.
    const bool with_packs =
        (sr.flags() & kFlagEnginePacks) != 0;
    if (with_packs)
        ckpt.packs_.resize(ckpt.cells_.size());
    for (size_t l = 0; l < ckpt.cells_.size(); ++l) {
        ckpt.cells_[l].reserve(ckpt.cacheBits_.size());
        if (with_packs)
            ckpt.packs_[l].reserve(ckpt.cacheBits_.size());
        for (int b : ckpt.cacheBits_) {
            const io::SectionInfo *si =
                sr.find(kTagCell, static_cast<int32_t>(l), b);
            // parseEager validated the directory structure, so the
            // section is present.
            std::vector<uint8_t> bytes = sr.read(*si);
            io::Reader r(bytes.data(), bytes.size());
            CacheCell cell;
            cell.codes = readCodes(r);
            cell.maskBytes = r.u8Vec();
            requireSectionEnd(r, kTagCell);
            if (cell.codes.bits != b)
                throw io::CheckpointError(
                    "corrupt checkpoint: cell precision does not "
                    "match its directory key");
            ckpt.cells_[l].push_back(std::move(cell));
            if (with_packs) {
                const io::SectionInfo *pi =
                    sr.find(kTagPack, static_cast<int32_t>(l), b);
                std::vector<uint8_t> pbytes = sr.read(*pi);
                io::Reader pr(pbytes.data(), pbytes.size());
                gemm::PackedIntWeights pack = readPack(pr);
                requireSectionEnd(pr, kTagPack);
                if (pack.bits != b)
                    throw io::CheckpointError(
                        "corrupt checkpoint: pack precision does not "
                        "match its cache column");
                ckpt.packs_[l].push_back(std::move(pack));
            }
        }
    }
    return ckpt;
}

Network
Checkpoint::instantiate() const
{
    Network net = buildFromSpec(spec_);
    StateDict dict;
    net.collectState(dict);
    for (const StateEntry &e : dict) {
        auto it = blobs_.find(e.name);
        if (it == blobs_.end())
            throw io::CheckpointError("checkpoint is missing state \"" +
                                      e.name + "\"");
        const Blob &b = it->second;
        if (e.tensor) {
            if (b.dtype != 0 || b.tensor.shape() != e.tensor->shape())
                throw io::CheckpointError("checkpoint state \"" +
                                          e.name +
                                          "\" does not match the "
                                          "rebuilt layer");
            *e.tensor = b.tensor;
        } else if (e.floats) {
            if (b.dtype != 1)
                throw io::CheckpointError("checkpoint state \"" +
                                          e.name + "\" has wrong type");
            *e.floats = b.floats;
        } else if (e.flags) {
            if (b.dtype != 2)
                throw io::CheckpointError("checkpoint state \"" +
                                          e.name + "\" has wrong type");
            *e.flags = b.flags;
        } else if (e.flag) {
            if (b.dtype != 3)
                throw io::CheckpointError("checkpoint state \"" +
                                          e.name + "\" has wrong type");
            *e.flag = b.flag;
        }
    }
    // Vector/flag blobs were restored at whatever length the artifact
    // carried; a checksum-valid but internally inconsistent artifact
    // must fail here, not read out of bounds at inference.
    std::string err = net.checkState();
    if (!err.empty())
        throw io::CheckpointError("checkpoint state invalid: " + err);
    return net;
}

void
Checkpoint::restoreOptimizer(Sgd &opt, Network &net) const
{
    if (!hasMomentum_)
        throw io::CheckpointError(
            "checkpoint carries no optimizer state");
    std::vector<Parameter *> params = net.parameters();
    if (momentum_.size() != params.size())
        throw io::CheckpointError(
            "checkpoint optimizer state covers " +
            std::to_string(momentum_.size()) +
            " parameters, network has " +
            std::to_string(params.size()));
    for (size_t i = 0; i < params.size(); ++i) {
        if (momentum_[i].shape() != params[i]->value.shape())
            throw io::CheckpointError(
                "checkpoint velocity shape does not match "
                "parameter " +
                std::to_string(i));
    }
    opt.importVelocity(params, momentum_);
}

std::unique_ptr<RpsEngine>
Checkpoint::restoreEngine(Network &net) const &
{
    // consume = false leaves the cells untouched, so the cast does
    // not break the const contract.
    return const_cast<Checkpoint *>(this)->restoreEngineImpl(
        net, /*consume=*/false);
}

std::unique_ptr<RpsEngine>
Checkpoint::restoreEngine(Network &net) &&
{
    return restoreEngineImpl(net, /*consume=*/true);
}

std::unique_ptr<RpsEngine>
Checkpoint::restoreEngineImpl(Network &net, bool consume)
{
    if (!hasEngineCache())
        return nullptr;
    PrecisionSet cache_set = precisionSetFromSpec(cacheBits_);
    for (int b : cacheBits_) {
        if (!net.precisionSet().contains(b))
            throw io::CheckpointError(
                "checkpoint cache precision " + std::to_string(b) +
                " is not in the network's bound set");
    }
    auto engine = std::make_unique<RpsEngine>(
        net, std::move(cache_set), RpsEngine::DeferBuild{});
    if (engine->numQuantLayers() != cells_.size())
        throw io::CheckpointError(
            "checkpoint cache covers " + std::to_string(cells_.size()) +
            " weight layers, network has " +
            std::to_string(engine->numQuantLayers()));
    std::vector<WeightQuantizedLayer *> wlayers =
        net.weightQuantizedLayers();
    for (size_t l = 0; l < cells_.size(); ++l) {
        for (size_t p = 0; p < cacheBits_.size(); ++p) {
            CacheCell &cell = cells_[l][p];
            if (cell.codes.size() != wlayers[l]->masterWeight().size() ||
                cell.codes.bits != cacheBits_[p])
                throw io::CheckpointError(
                    "checkpoint cache cell does not match layer " +
                    std::to_string(l));
            Tensor mask = unpackMask(cell.maskBytes, cell.codes.shape,
                                     cell.codes.size());
            if (!packs_.empty()) {
                gemm::PackedIntWeights &pk = packs_[l][p];
                int m = cell.codes.shape.empty() ? 0
                                                 : cell.codes.shape[0];
                int k = m > 0 ? static_cast<int>(cell.codes.size()) / m
                              : 0;
                if (pk.m != m || pk.k != k ||
                    pk.bits != cell.codes.bits)
                    throw io::CheckpointError(
                        "checkpoint pack does not match cache cell "
                        "of layer " +
                        std::to_string(l));
                engine->importCell(l, p,
                                   consume ? std::move(cell.codes)
                                           : cell.codes,
                                   std::move(mask),
                                   consume ? std::move(pk) : pk);
            } else {
                engine->importCell(l, p,
                                   consume ? std::move(cell.codes)
                                           : cell.codes,
                                   std::move(mask));
            }
        }
    }
    return engine;
}

StreamingCheckpoint::StreamingCheckpoint(const std::string &path)
    : reader_(std::make_shared<io::SectionReader>(path)),
      eager_(Checkpoint::parseEager(*reader_))
{
    cacheBits_ = eager_.cacheBits_;
    cacheLayers_ = eager_.cells_.size();
    hasPacks_ = (reader_->flags() & kFlagEnginePacks) != 0;
}

std::unique_ptr<RpsEngine>
StreamingCheckpoint::restoreEngine(
    const std::shared_ptr<StreamingCheckpoint> &self, Network &net)
{
    if (!self->hasEngineCache())
        return nullptr;
    PrecisionSet cache_set = precisionSetFromSpec(self->cacheBits_);
    for (int b : self->cacheBits_) {
        if (!net.precisionSet().contains(b))
            throw io::CheckpointError(
                "checkpoint cache precision " + std::to_string(b) +
                " is not in the network's bound set");
    }
    auto engine = std::make_unique<RpsEngine>(
        net, std::move(cache_set), RpsEngine::DeferBuild{});
    if (engine->numQuantLayers() != self->cacheLayers_)
        throw io::CheckpointError(
            "checkpoint cache covers " +
            std::to_string(self->cacheLayers_) +
            " weight layers, network has " +
            std::to_string(engine->numQuantLayers()));
    // The hydrator owns a reference to this StreamingCheckpoint, so
    // the open artifact lives exactly as long as the engine may still
    // fault cells in. Any malformation in a lazily touched cell —
    // checksum mismatch, bad framing, geometry drift — returns false
    // and the engine re-quantizes the cell from its master weights,
    // which reproduces the persisted codes bit-for-bit.
    std::shared_ptr<StreamingCheckpoint> keep = self;
    engine->setCellHydrator([keep](size_t layer, int bits,
                                   RpsEngine::HydratedCell &out) {
        try {
            const io::SectionReader &sr = *keep->reader_;
            const io::SectionInfo *ci = sr.find(
                kTagCell, static_cast<int32_t>(layer), bits);
            if (ci == nullptr)
                return false;
            std::vector<uint8_t> bytes = sr.read(*ci);
            io::Reader r(bytes.data(), bytes.size());
            QuantTensor codes = readCodes(r);
            std::vector<char> mask_bytes = r.u8Vec();
            if (!r.atEnd() || codes.bits != bits)
                return false;
            out.steMask =
                unpackMask(mask_bytes, codes.shape, codes.size());
            if (keep->hasPacks_) {
                const io::SectionInfo *pi = sr.find(
                    kTagPack, static_cast<int32_t>(layer), bits);
                if (pi == nullptr)
                    return false;
                std::vector<uint8_t> pbytes = sr.read(*pi);
                io::Reader pr(pbytes.data(), pbytes.size());
                gemm::PackedIntWeights pack = readPack(pr);
                int m = codes.shape.empty() ? 0 : codes.shape[0];
                int k = m > 0 ? static_cast<int>(codes.size()) / m : 0;
                if (!pr.atEnd() || pack.m != m || pack.k != k ||
                    pack.bits != codes.bits)
                    return false;
                out.packed = std::move(pack);
                out.hasPack = true;
            }
            out.codes = std::move(codes);
            return true;
        } catch (const io::CheckpointError &) {
            return false;
        }
    });
    return engine;
}

} // namespace checkpoint
} // namespace twoinone
