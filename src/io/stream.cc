/**
 * @file
 * SectionReader implementation.
 */

#include "io/stream.hh"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

namespace twoinone {
namespace io {

namespace {

const char kMagic[8] = {'2', 'I', 'N', '1', 'C', 'K', 'P', 'T'};

} // namespace

SectionReader::SectionReader(const std::string &path) : path_(path)
{
    // Under an injected read fault the whole file must pass through
    // io::readFile once so the hook can corrupt it — positional reads
    // would dodge the seam and the fault would silently not land.
    useBuffer_ = readFaultHookInstalled();
    if (useBuffer_) {
        buffered_ = readFile(path);
        fileSize_ = buffered_.size();
    } else {
        fd_ = ::open(path.c_str(), O_RDONLY);
        if (fd_ < 0)
            throw CheckpointError("cannot open " + path);
        struct stat st;
        if (::fstat(fd_, &st) != 0) {
            ::close(fd_);
            fd_ = -1;
            throw CheckpointError("cannot stat " + path);
        }
        fileSize_ = static_cast<uint64_t>(st.st_size);
    }

    try {
        // Header -----------------------------------------------------
        // magic (8) | version u32 | flags u32 | dir count u32, then
        // the entries and the directory checksum.
        constexpr size_t probe = kStreamHeaderBytes + sizeof(uint32_t);
        if (fileSize_ < probe + sizeof(uint64_t))
            throw CheckpointError(path + " is not a checkpoint "
                                         "(too small)");
        uint8_t head[probe];
        readAt(0, probe, head);
        if (std::memcmp(head, kMagic, sizeof(kMagic)) != 0)
            throw CheckpointError(path + " is not a checkpoint "
                                         "(bad magic)");
        std::memcpy(&version_, head + sizeof(kMagic), sizeof(version_));
        std::memcpy(&flags_, head + sizeof(kMagic) + sizeof(version_),
                    sizeof(flags_));
        // Gate the version before any checksum runs: a version-N
        // artifact from a newer build must report *version*, not
        // "corrupted" (its framing may legitimately differ).
        if (version_ != kStreamFormatVersion)
            throw CheckpointError(
                "unsupported checkpoint format version " +
                std::to_string(version_) + " (this build reads version " +
                std::to_string(kStreamFormatVersion) + ")");

        // Directory --------------------------------------------------
        uint32_t count;
        std::memcpy(&count, head + kStreamHeaderBytes, sizeof(count));
        // Guard the count against the bytes actually present before
        // sizing anything by it.
        if (static_cast<uint64_t>(count) >
            (fileSize_ - probe) / kDirEntryBytes)
            throw CheckpointError(
                "corrupt checkpoint: section count " +
                std::to_string(count) + " exceeds the file size");
        const size_t dir_bytes = count * kDirEntryBytes;
        std::vector<uint8_t> front(probe + dir_bytes + sizeof(uint64_t));
        readAt(0, front.size(), front.data());
        uint64_t stored;
        std::memcpy(&stored, front.data() + probe + dir_bytes,
                    sizeof(stored));
        if (fnv1a(front.data(), probe + dir_bytes) != stored)
            throw CheckpointError(path + ": section directory "
                                         "corrupted (checksum "
                                         "mismatch)");
        dir_.reserve(count);
        uint64_t expect = front.size();
        for (uint32_t i = 0; i < count; ++i) {
            const uint8_t *p = front.data() + probe + i * kDirEntryBytes;
            SectionInfo s;
            std::memcpy(s.tag, p, 4);
            std::memcpy(&s.a, p + 4, 4);
            std::memcpy(&s.b, p + 8, 4);
            std::memcpy(&s.offset, p + 12, 8);
            std::memcpy(&s.size, p + 20, 8);
            std::memcpy(&s.checksum, p + 28, 8);
            // Sections must tile the payload exactly — offsets are
            // derived, so any gap, overlap, or out-of-bounds range is
            // corruption, and with contiguity every file byte sits
            // under exactly one checksum.
            if (s.offset != expect || s.size > fileSize_ - s.offset)
                throw CheckpointError(
                    "corrupt checkpoint: section directory is not "
                    "contiguous at entry " +
                    std::to_string(i));
            expect = s.offset + s.size;
            dir_.push_back(s);
        }
        if (expect != fileSize_)
            throw CheckpointError(
                path + ": " + std::to_string(fileSize_ - expect) +
                " bytes past the last section (corrupt or mis-framed "
                "artifact)");
    } catch (...) {
        if (fd_ >= 0) {
            ::close(fd_);
            fd_ = -1;
        }
        throw;
    }
}

SectionReader::~SectionReader()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
SectionReader::readAt(uint64_t offset, size_t n, uint8_t *out) const
{
    if (useBuffer_) {
        if (offset > buffered_.size() || n > buffered_.size() - offset)
            throw CheckpointError("truncated checkpoint: wanted " +
                                  std::to_string(n) +
                                  " bytes at offset " +
                                  std::to_string(offset));
        std::memcpy(out, buffered_.data() + offset, n);
        return;
    }
    size_t done = 0;
    while (done < n) {
        ssize_t got = ::pread(fd_, out + done, n - done,
                              static_cast<off_t>(offset + done));
        if (got < 0) {
            if (errno == EINTR)
                continue;
            throw CheckpointError("read error on " + path_ + ": " +
                                  std::strerror(errno));
        }
        if (got == 0)
            throw CheckpointError("truncated checkpoint: short read "
                                  "at offset " +
                                  std::to_string(offset + done));
        done += static_cast<size_t>(got);
    }
}

const SectionInfo *
SectionReader::find(const char *tag, int32_t a, int32_t b) const
{
    for (const SectionInfo &s : dir_) {
        if (!s.is(tag))
            continue;
        if (a >= 0 && s.a != a)
            continue;
        if (b >= 0 && s.b != b)
            continue;
        return &s;
    }
    return nullptr;
}

std::vector<uint8_t>
SectionReader::read(const SectionInfo &s) const
{
    std::vector<uint8_t> bytes(s.size);
    readAt(s.offset, s.size, bytes.data());
    if (fnv1a(bytes.data(), bytes.size()) != s.checksum)
        throw CheckpointError(path_ + ": section " +
                              std::string(s.tag, 4) +
                              " corrupted (checksum mismatch)");
    bytesRead_.fetch_add(s.size, std::memory_order_relaxed);
    sectionsRead_.fetch_add(1, std::memory_order_relaxed);
    return bytes;
}

} // namespace io
} // namespace twoinone
