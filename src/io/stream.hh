/**
 * @file
 * Streaming checkpoint I/O: a positional section reader over the
 * version-2 artifact layout.
 *
 * The v1 reader slurped the whole file and checksummed it as one
 * blob, so warm-starting a model cost peak RSS ~= artifact size —
 * fine at 5.5 MB, hopeless for an ImageNet-class network whose code
 * cache runs to gigabytes. Version 2 restructures the artifact into a
 * front-loaded *section directory*: a fixed header, then one entry
 * per section (tag, two i32 keys, absolute offset, size, FNV-1a
 * checksum), then a directory checksum, then the section payloads
 * back to back. A SectionReader parses header + directory eagerly —
 * a few hundred bytes — and hydrates individual sections on demand
 * with pread(2), verifying each section's checksum as it lands.
 *
 * Integrity guarantees match the eager reader byte for byte:
 *
 *  - every file byte is covered: header + directory by the directory
 *    checksum, every payload byte by exactly one section checksum,
 *    and the directory must tile the file exactly (contiguous
 *    sections, last one ending at EOF) — trailing or gap bytes are a
 *    framing error;
 *  - any malformation (missing file, truncation, bad magic,
 *    unsupported version, checksum mismatch, non-contiguous
 *    directory) throws io::CheckpointError, never returns garbage.
 *
 * Thread safety: read() is safe to call concurrently from multiple
 * threads (positional reads on a shared descriptor; atomic
 * counters). Construction/destruction must not race with reads.
 *
 * Fault-injection seam: the scenario harness corrupts artifacts by
 * mutating bytes inside io::readFile()'s onRead hook. Positional
 * reads would bypass that seam, so when a read hook is installed at
 * open time the reader degrades to one buffered io::readFile() pass
 * and serves sections out of the (possibly corrupted) buffer —
 * injected corruption is observed exactly as the eager reader would.
 */

#ifndef TWOINONE_IO_STREAM_HH
#define TWOINONE_IO_STREAM_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "io/serialize.hh"

namespace twoinone {
namespace io {

/** Fixed artifact framing shared by the writer (checkpoint.cc) and
 * this reader. */
/** @{ */
/** The artifact format version this reader understands (the section-
 * directory layout; checkpoint::kFormatVersion aliases this). */
constexpr uint32_t kStreamFormatVersion = 2;
/** Header: magic (8) | format version u32 | flags u32. */
constexpr size_t kStreamHeaderBytes = 16;
/** One directory entry: tag (4 raw bytes) | a i32 | b i32 |
 * offset u64 | size u64 | checksum u64. */
constexpr size_t kDirEntryBytes = 36;
/** @} */

/**
 * One directory entry: a contiguous, independently checksummed byte
 * range of the artifact. @p a / @p b key multi-instance sections
 * (engine cache cells use a = layer, b = precision bits); single-
 * instance sections carry -1.
 */
struct SectionInfo
{
    char tag[4] = {0, 0, 0, 0};
    int32_t a = -1;
    int32_t b = -1;
    uint64_t offset = 0;
    uint64_t size = 0;
    uint64_t checksum = 0;

    bool is(const char *t) const
    {
        return tag[0] == t[0] && tag[1] == t[1] && tag[2] == t[2] &&
               tag[3] == t[3];
    }
};

/**
 * Positional reader over a v2 artifact. Opening parses and validates
 * the header + section directory only; payload bytes move on read().
 */
class SectionReader
{
  public:
    /** Open @p path and parse the header + directory (throws
     * io::CheckpointError on any malformation). */
    explicit SectionReader(const std::string &path);
    ~SectionReader();

    SectionReader(const SectionReader &) = delete;
    SectionReader &operator=(const SectionReader &) = delete;

    const std::string &path() const { return path_; }
    uint32_t version() const { return version_; }
    uint32_t flags() const { return flags_; }
    uint64_t fileSize() const { return fileSize_; }

    /** The parsed directory, in file order. */
    const std::vector<SectionInfo> &sections() const { return dir_; }

    /** First section matching @p tag (and @p a / @p b when >= 0), or
     * null when absent. */
    const SectionInfo *find(const char *tag, int32_t a = -1,
                            int32_t b = -1) const;

    /** Hydrate one section: positional read + checksum verification.
     * Throws io::CheckpointError on a short read or checksum
     * mismatch. Thread-safe. */
    std::vector<uint8_t> read(const SectionInfo &s) const;

    /** @name Hydration accounting
     * Payload bytes / sections actually read so far — the streaming
     * warm-start evidence (a lazy load reads directory + touched
     * sections, not the file). */
    /** @{ */
    uint64_t bytesRead() const
    {
        return bytesRead_.load(std::memory_order_relaxed);
    }
    uint64_t sectionsRead() const
    {
        return sectionsRead_.load(std::memory_order_relaxed);
    }
    /** @} */

  private:
    std::string path_;
    int fd_ = -1;
    uint64_t fileSize_ = 0;
    uint32_t version_ = 0;
    uint32_t flags_ = 0;
    std::vector<SectionInfo> dir_;
    /** Whole-file buffer when a read fault hook forced the buffered
     * fallback (empty on the pread path). */
    std::vector<uint8_t> buffered_;
    bool useBuffer_ = false;
    mutable std::atomic<uint64_t> bytesRead_{0};
    mutable std::atomic<uint64_t> sectionsRead_{0};

    /** Positional read of [offset, offset+n) into @p out. */
    void readAt(uint64_t offset, size_t n, uint8_t *out) const;
};

} // namespace io
} // namespace twoinone

#endif // TWOINONE_IO_STREAM_HH
