/**
 * @file
 * Binary (de)serialization primitives for model artifacts.
 *
 * Writer accumulates a little-endian byte buffer; Reader walks one
 * with bounds-checked reads. Unlike the rest of the library — where a
 * violated invariant is a bug and panics — a malformed artifact is a
 * *recoverable caller-facing* condition (truncated download, corrupt
 * disk, a checkpoint from a newer format), so the io layer reports it
 * by throwing CheckpointError and leaves the process healthy.
 *
 * Scope: both ends run on little-endian hosts (the x86/ARM targets
 * this repo builds for); values are memcpy'd, not byte-swapped.
 */

#ifndef TWOINONE_IO_SERIALIZE_HH
#define TWOINONE_IO_SERIALIZE_HH

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "tensor/tensor.hh"

namespace twoinone {
namespace io {

/**
 * A model artifact could not be written or read back: missing file,
 * truncation, payload corruption, or an unsupported format version.
 */
class CheckpointError : public std::runtime_error
{
  public:
    explicit CheckpointError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/**
 * Append-only little-endian byte sink.
 */
class Writer
{
  public:
    void u8(uint8_t v) { buf_.push_back(v); }
    void u32(uint32_t v) { raw(&v, sizeof(v)); }
    void u64(uint64_t v) { raw(&v, sizeof(v)); }
    void i32(int32_t v) { raw(&v, sizeof(v)); }
    void f32(float v) { raw(&v, sizeof(v)); }

    /** Length-prefixed UTF-8 string. */
    void str(const std::string &s);

    /** Count-prefixed int vector (shapes, precision sets). */
    void intVec(const std::vector<int> &v);

    /** Count-prefixed payload vectors. */
    void f32Vec(const float *data, size_t count);
    void i32Vec(const int32_t *data, size_t count);
    void i16Vec(const int16_t *data, size_t count);
    void i64Vec(const int64_t *data, size_t count);
    void u8Vec(const char *data, size_t count);

    /** Shape + raw float payload of a tensor. */
    void tensor(const Tensor &t);

    const std::vector<uint8_t> &bytes() const { return buf_; }
    size_t size() const { return buf_.size(); }

  private:
    std::vector<uint8_t> buf_;

    void raw(const void *p, size_t n);
};

/**
 * Bounds-checked cursor over an in-memory byte buffer (non-owning).
 * Every read past the end throws CheckpointError — a truncated
 * artifact fails loudly at the first missing byte.
 */
class Reader
{
  public:
    Reader(const uint8_t *data, size_t size) : data_(data), size_(size) {}

    uint8_t u8();
    uint32_t u32();
    uint64_t u64();
    int32_t i32();
    float f32();

    std::string str();
    std::vector<int> intVec();
    std::vector<float> f32Vec();
    std::vector<int32_t> i32Vec();
    std::vector<int16_t> i16Vec();
    std::vector<int64_t> i64Vec();
    std::vector<char> u8Vec();
    Tensor tensor();

    size_t offset() const { return off_; }
    size_t remaining() const { return size_ - off_; }
    bool atEnd() const { return off_ == size_; }

  private:
    const uint8_t *data_;
    size_t size_;
    size_t off_ = 0;

    const uint8_t *take(size_t n);
    /** Element count guarded against the bytes actually left. */
    size_t count(size_t elem_size);
};

/** FNV-1a 64-bit hash — the checkpoint payload integrity check. */
uint64_t fnv1a(const uint8_t *data, size_t size);

/**
 * Deterministic fault-injection seam for the scenario harness and the
 * robustness tests (src/harness/fault_injector). When installed, the
 * hooks intercept every readFile/writeFile in this process:
 *
 *  - onRead runs after a successful read and may mutate the bytes in
 *    place (bit flips, truncation) — the caller then parses the
 *    corrupted view exactly as it would a corrupted disk.
 *  - onWrite is consulted before writing; returning a value smaller
 *    than @p size makes writeFile persist only that prefix and then
 *    throw CheckpointError — a crash mid-write, observable on disk.
 *    Return SIZE_MAX (or leave the hook empty) for no fault.
 *
 * Process-global and not thread-safe: install/clear from the single
 * harness/test thread only, never while another thread is inside
 * readFile/writeFile.
 */
struct FaultHooks
{
    std::function<void(const std::string &path,
                       std::vector<uint8_t> &bytes)>
        onRead;
    std::function<size_t(const std::string &path, size_t size)> onWrite;
};

/** Install @p hooks (replacing any previous ones). */
void setFaultHooks(FaultHooks hooks);

/** Remove all installed fault hooks. */
void clearFaultHooks();

/** Whether a read-side fault hook is currently installed. The
 * streaming SectionReader consults this at open time: positional
 * reads would bypass the readFile() seam, so under hooks it falls
 * back to one buffered readFile() pass and serves sections from the
 * (possibly corrupted) buffer — injected faults stay byte-identical
 * to the eager reader's view. */
bool readFaultHookInstalled();

/** Write a byte buffer to @p path (throws CheckpointError on I/O
 * failure). */
void writeFile(const std::string &path, const std::vector<uint8_t> &bytes);

/** Read a whole file (throws CheckpointError when absent/unreadable). */
std::vector<uint8_t> readFile(const std::string &path);

/**
 * Atomically replace @p path with @p bytes: the payload is written to
 * "<path>.tmp" and renamed over the target, so a crash (or injected
 * write fault) at any point leaves either the previous artifact or
 * the new one at @p path — never a torn prefix. The orphaned temp
 * file is removed best-effort on failure. Throws CheckpointError on
 * any I/O failure.
 */
void writeFileAtomic(const std::string &path,
                     const std::vector<uint8_t> &bytes);

} // namespace io
} // namespace twoinone

#endif // TWOINONE_IO_SERIALIZE_HH
