/**
 * @file
 * Binary serialization primitives implementation.
 */

#include "io/serialize.hh"

#include <cstdio>
#include <cstring>
#include <fstream>

namespace twoinone {
namespace io {

namespace {

/** Installed fault hooks (empty = pass-through). Process-global, see
 * the header's thread-safety note. */
FaultHooks &
faultHooks()
{
    static FaultHooks hooks;
    return hooks;
}

} // namespace

void
setFaultHooks(FaultHooks hooks)
{
    faultHooks() = std::move(hooks);
}

void
clearFaultHooks()
{
    faultHooks() = FaultHooks();
}

bool
readFaultHookInstalled()
{
    return static_cast<bool>(faultHooks().onRead);
}

void
Writer::raw(const void *p, size_t n)
{
    if (n == 0)
        return; // empty payloads may come with a null pointer
    const uint8_t *b = static_cast<const uint8_t *>(p);
    buf_.insert(buf_.end(), b, b + n);
}

void
Writer::str(const std::string &s)
{
    u32(static_cast<uint32_t>(s.size()));
    raw(s.data(), s.size());
}

void
Writer::intVec(const std::vector<int> &v)
{
    u32(static_cast<uint32_t>(v.size()));
    for (int x : v)
        i32(x);
}

void
Writer::f32Vec(const float *data, size_t count)
{
    u64(count);
    raw(data, count * sizeof(float));
}

void
Writer::i32Vec(const int32_t *data, size_t count)
{
    u64(count);
    raw(data, count * sizeof(int32_t));
}

void
Writer::i16Vec(const int16_t *data, size_t count)
{
    u64(count);
    raw(data, count * sizeof(int16_t));
}

void
Writer::i64Vec(const int64_t *data, size_t count)
{
    u64(count);
    raw(data, count * sizeof(int64_t));
}

void
Writer::u8Vec(const char *data, size_t count)
{
    u64(count);
    raw(data, count);
}

void
Writer::tensor(const Tensor &t)
{
    intVec(t.shape());
    f32Vec(t.data(), t.size());
}

const uint8_t *
Reader::take(size_t n)
{
    if (n > size_ - off_)
        throw CheckpointError("truncated checkpoint: wanted " +
                              std::to_string(n) + " bytes at offset " +
                              std::to_string(off_) + ", have " +
                              std::to_string(size_ - off_));
    const uint8_t *p = data_ + off_;
    off_ += n;
    return p;
}

size_t
Reader::count(size_t elem_size)
{
    uint64_t n = u64();
    // An absurd count (corruption) must not turn into a huge
    // allocation: the payload bytes have to actually be present.
    if (elem_size > 0 && n > (size_ - off_) / elem_size)
        throw CheckpointError("corrupt checkpoint: element count " +
                              std::to_string(n) +
                              " exceeds the remaining payload");
    return static_cast<size_t>(n);
}

uint8_t
Reader::u8()
{
    return *take(1);
}

uint32_t
Reader::u32()
{
    uint32_t v;
    std::memcpy(&v, take(sizeof(v)), sizeof(v));
    return v;
}

uint64_t
Reader::u64()
{
    uint64_t v;
    std::memcpy(&v, take(sizeof(v)), sizeof(v));
    return v;
}

int32_t
Reader::i32()
{
    int32_t v;
    std::memcpy(&v, take(sizeof(v)), sizeof(v));
    return v;
}

float
Reader::f32()
{
    float v;
    std::memcpy(&v, take(sizeof(v)), sizeof(v));
    return v;
}

std::string
Reader::str()
{
    uint32_t n = u32();
    if (n > size_ - off_)
        throw CheckpointError("corrupt checkpoint: string length " +
                              std::to_string(n) +
                              " exceeds the remaining payload");
    const uint8_t *p = take(n);
    return std::string(reinterpret_cast<const char *>(p), n);
}

std::vector<int>
Reader::intVec()
{
    uint32_t n = u32();
    if (static_cast<size_t>(n) > (size_ - off_) / sizeof(int32_t))
        throw CheckpointError("corrupt checkpoint: int vector length " +
                              std::to_string(n) +
                              " exceeds the remaining payload");
    std::vector<int> v(n);
    for (uint32_t i = 0; i < n; ++i)
        v[i] = i32();
    return v;
}

std::vector<float>
Reader::f32Vec()
{
    size_t n = count(sizeof(float));
    std::vector<float> v(n);
    if (n > 0)
        std::memcpy(v.data(), take(n * sizeof(float)),
                    n * sizeof(float));
    return v;
}

std::vector<int32_t>
Reader::i32Vec()
{
    size_t n = count(sizeof(int32_t));
    std::vector<int32_t> v(n);
    if (n > 0)
        std::memcpy(v.data(), take(n * sizeof(int32_t)),
                    n * sizeof(int32_t));
    return v;
}

std::vector<int16_t>
Reader::i16Vec()
{
    size_t n = count(sizeof(int16_t));
    std::vector<int16_t> v(n);
    if (n > 0)
        std::memcpy(v.data(), take(n * sizeof(int16_t)),
                    n * sizeof(int16_t));
    return v;
}

std::vector<int64_t>
Reader::i64Vec()
{
    size_t n = count(sizeof(int64_t));
    std::vector<int64_t> v(n);
    if (n > 0)
        std::memcpy(v.data(), take(n * sizeof(int64_t)),
                    n * sizeof(int64_t));
    return v;
}

std::vector<char>
Reader::u8Vec()
{
    size_t n = count(1);
    std::vector<char> v(n);
    if (n > 0)
        std::memcpy(v.data(), take(n), n);
    return v;
}

Tensor
Reader::tensor()
{
    std::vector<int> shape = intVec();
    // A rank-0 shape holds zero elements (Tensor::numel) — starting
    // the product at 1 would let a crafted one-element payload write
    // past an empty buffer.
    size_t expect = shape.empty() ? 0 : 1;
    for (int d : shape) {
        if (d <= 0)
            throw CheckpointError(
                "corrupt checkpoint: non-positive tensor dim");
        expect *= static_cast<size_t>(d);
    }
    size_t n = count(sizeof(float));
    if (n != expect)
        throw CheckpointError("corrupt checkpoint: tensor payload " +
                              std::to_string(n) +
                              " elements does not match its shape");
    Tensor t(shape);
    if (n > 0)
        std::memcpy(t.data(), take(n * sizeof(float)),
                    n * sizeof(float));
    return t;
}

uint64_t
fnv1a(const uint8_t *data, size_t size)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (size_t i = 0; i < size; ++i) {
        h ^= data[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

void
writeFile(const std::string &path, const std::vector<uint8_t> &bytes)
{
    size_t limit = bytes.size();
    bool injected = false;
    if (faultHooks().onWrite) {
        size_t n = faultHooks().onWrite(path, bytes.size());
        if (n < bytes.size()) {
            limit = n;
            injected = true;
        }
    }
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (!f)
        throw CheckpointError("cannot open " + path + " for writing");
    f.write(reinterpret_cast<const char *>(bytes.data()),
            static_cast<std::streamsize>(limit));
    if (injected) {
        // Persist the torn prefix (like a crash would) before
        // reporting the failure.
        f.flush();
        throw CheckpointError("injected write fault: " + path +
                              " torn after " + std::to_string(limit) +
                              " of " + std::to_string(bytes.size()) +
                              " bytes");
    }
    if (!f)
        throw CheckpointError("short write to " + path);
}

std::vector<uint8_t>
readFile(const std::string &path)
{
    std::ifstream f(path, std::ios::binary | std::ios::ate);
    if (!f)
        throw CheckpointError("cannot open " + path);
    std::streamsize size = f.tellg();
    f.seekg(0);
    std::vector<uint8_t> bytes(static_cast<size_t>(size));
    f.read(reinterpret_cast<char *>(bytes.data()), size);
    if (!f)
        throw CheckpointError("short read from " + path);
    if (faultHooks().onRead)
        faultHooks().onRead(path, bytes);
    return bytes;
}

void
writeFileAtomic(const std::string &path,
                const std::vector<uint8_t> &bytes)
{
    std::string tmp = path + ".tmp";
    try {
        writeFile(tmp, bytes);
    } catch (...) {
        std::remove(tmp.c_str());
        throw;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw CheckpointError("cannot rename " + tmp + " over " + path);
    }
}

} // namespace io
} // namespace twoinone
