/**
 * @file
 * Implementation of statistics helpers and the bench table printer.
 */

#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <iostream>
#include <sstream>

namespace twoinone {

void
RunningStat::add(double x)
{
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
RunningStat::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

void
Accuracy::add(bool correct)
{
    ++total_;
    if (correct)
        ++correct_;
}

double
Accuracy::fraction() const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(correct_) / static_cast<double>(total_);
}

void
TablePrinter::header(const std::vector<std::string> &cells)
{
    rows_.insert(rows_.begin(), cells);
    hasHeader_ = true;
}

void
TablePrinter::row(const std::vector<std::string> &cells)
{
    rows_.push_back(cells);
}

std::string
TablePrinter::str() const
{
    if (rows_.empty())
        return "";

    size_t cols = 0;
    for (const auto &r : rows_)
        cols = std::max(cols, r.size());

    std::vector<size_t> width(cols, 0);
    for (const auto &r : rows_) {
        for (size_t c = 0; c < r.size(); ++c)
            width[c] = std::max(width[c], r[c].size());
    }

    std::ostringstream oss;
    for (size_t i = 0; i < rows_.size(); ++i) {
        const auto &r = rows_[i];
        for (size_t c = 0; c < r.size(); ++c) {
            oss << std::left << std::setw(static_cast<int>(width[c]) + 2)
                << r[c];
        }
        oss << "\n";
        if (i == 0 && hasHeader_) {
            for (size_t c = 0; c < cols; ++c)
                oss << std::string(width[c], '-') << "  ";
            oss << "\n";
        }
    }
    return oss.str();
}

void
TablePrinter::print() const
{
    std::cout << str();
}

std::string
formatFixed(double v, int decimals)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(decimals) << v;
    return oss.str();
}

} // namespace twoinone
