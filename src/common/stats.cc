/**
 * @file
 * Implementation of statistics helpers and the bench table printer.
 */

#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <iostream>
#include <sstream>

namespace twoinone {

void
RunningStat::add(double x)
{
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
RunningStat::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

QuantileSketch::QuantileSketch(double relError, double minValue,
                               double maxValue)
    : minValue_(minValue), logBase_(std::log1p(2.0 * relError))
{
    // Bucket count covering [minValue, maxValue] at the requested
    // resolution, plus one overflow bucket for clamped-down values.
    size_t n = static_cast<size_t>(
                   std::ceil(std::log(maxValue / minValue) / logBase_)) +
               2;
    counts_.assign(n, 0);
}

size_t
QuantileSketch::bucketOf(double v) const
{
    if (!(v > minValue_)) // NaN and sub-minimum both clamp to 0
        return 0;
    size_t idx =
        static_cast<size_t>(std::log(v / minValue_) / logBase_) + 1;
    return std::min(idx, counts_.size() - 1);
}

void
QuantileSketch::add(double v)
{
    ++counts_[bucketOf(v)];
    ++count_;
}

double
QuantileSketch::quantile(double q) const
{
    if (count_ == 0)
        return 0.0;
    q = std::min(1.0, std::max(0.0, q));
    // Rank of the order statistic an exact sorted vector would pick.
    uint64_t rank = static_cast<uint64_t>(
        q * static_cast<double>(count_ - 1));
    uint64_t seen = 0;
    for (size_t i = 0; i < counts_.size(); ++i) {
        seen += counts_[i];
        if (seen > rank) {
            if (i == 0)
                return minValue_;
            // Geometric midpoint of the bucket's bounds.
            double lo = minValue_ *
                        std::exp(static_cast<double>(i - 1) * logBase_);
            return lo * std::exp(0.5 * logBase_);
        }
    }
    return minValue_ *
           std::exp(static_cast<double>(counts_.size() - 1) * logBase_);
}

void
QuantileSketch::clear()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    count_ = 0;
}

void
Accuracy::add(bool correct)
{
    ++total_;
    if (correct)
        ++correct_;
}

double
Accuracy::fraction() const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(correct_) / static_cast<double>(total_);
}

void
TablePrinter::header(const std::vector<std::string> &cells)
{
    rows_.insert(rows_.begin(), cells);
    hasHeader_ = true;
}

void
TablePrinter::row(const std::vector<std::string> &cells)
{
    rows_.push_back(cells);
}

std::string
TablePrinter::str() const
{
    if (rows_.empty())
        return "";

    size_t cols = 0;
    for (const auto &r : rows_)
        cols = std::max(cols, r.size());

    std::vector<size_t> width(cols, 0);
    for (const auto &r : rows_) {
        for (size_t c = 0; c < r.size(); ++c)
            width[c] = std::max(width[c], r[c].size());
    }

    std::ostringstream oss;
    for (size_t i = 0; i < rows_.size(); ++i) {
        const auto &r = rows_[i];
        for (size_t c = 0; c < r.size(); ++c) {
            oss << std::left << std::setw(static_cast<int>(width[c]) + 2)
                << r[c];
        }
        oss << "\n";
        if (i == 0 && hasHeader_) {
            for (size_t c = 0; c < cols; ++c)
                oss << std::string(width[c], '-') << "  ";
            oss << "\n";
        }
    }
    return oss.str();
}

void
TablePrinter::print() const
{
    std::cout << str();
}

std::string
formatFixed(double v, int decimals)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(decimals) << v;
    return oss.str();
}

} // namespace twoinone
