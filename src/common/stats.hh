/**
 * @file
 * Small statistics helpers shared across evaluation and bench code:
 * running mean/variance accumulator, fraction-correct counter, and a
 * fixed-width table printer used by the paper-reproduction benches.
 */

#ifndef TWOINONE_COMMON_STATS_HH
#define TWOINONE_COMMON_STATS_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace twoinone {

/**
 * Welford running mean / variance accumulator.
 */
class RunningStat
{
  public:
    /** Fold one observation into the accumulator. */
    void add(double x);

    /** Number of observations so far. */
    size_t count() const { return n_; }

    /** Mean of observations (0 when empty). */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Unbiased sample variance (0 with fewer than two samples). */
    double variance() const;

    /** Square root of variance(). */
    double stddev() const;

    /** Smallest observation (+inf when empty). */
    double min() const { return min_; }

    /** Largest observation (-inf when empty). */
    double max() const { return max_; }

  private:
    size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 1e300;
    double max_ = -1e300;
};

/**
 * Bounded-memory quantile estimator over positive values: a
 * geometrically bucketed histogram whose bucket width bounds the
 * relative error of every reported quantile.
 *
 * Soak-length serving runs feed one latency per request into the
 * sketch; memory stays fixed at the bucket array (a few hundred
 * uint64 counters for the default range) no matter how many samples
 * arrive, while an exact sorted-vector quantile would grow one double
 * per request forever. Values are clamped into [minValue, maxValue];
 * quantile() returns the geometric midpoint of the bucket holding the
 * requested rank, so the result is within a factor of (1 + relError)
 * of the exact order statistic. Deterministic: the sketch is a pure
 * function of the multiset of added values.
 */
class QuantileSketch
{
  public:
    /**
     * @param relError Relative-error bound per quantile (bucket
     *        growth factor is 1 + 2 * relError).
     * @param minValue Smallest resolvable value (smaller clamps up).
     * @param maxValue Largest resolvable value (larger clamps down).
     */
    explicit QuantileSketch(double relError = 0.05,
                            double minValue = 1e-2,
                            double maxValue = 1e10);

    /** Fold one observation into the sketch. */
    void add(double v);

    /** Observations so far. */
    uint64_t count() const { return count_; }

    /** Estimated q-quantile (q in [0, 1]); 0 when empty. */
    double quantile(double q) const;

    /** Drop all observations (bucket array is retained). */
    void clear();

    /** Fixed bucket-array length — the memory bound. */
    size_t buckets() const { return counts_.size(); }

  private:
    double minValue_;
    double logBase_; ///< log(1 + 2 * relError)
    std::vector<uint64_t> counts_;
    uint64_t count_ = 0;

    size_t bucketOf(double v) const;
};

/**
 * Accuracy counter: fraction of correct predictions.
 */
class Accuracy
{
  public:
    /** Record one prediction outcome. */
    void add(bool correct);

    /** Fraction correct in [0,1]; 0 when empty. */
    double fraction() const;

    /** Fraction correct as a percentage. */
    double percent() const { return 100.0 * fraction(); }

    /** Number of predictions recorded. */
    size_t count() const { return total_; }

  private:
    size_t correct_ = 0;
    size_t total_ = 0;
};

/**
 * Fixed-width ASCII table used by bench binaries to print paper-style
 * rows. Columns auto-size to their widest cell.
 */
class TablePrinter
{
  public:
    /** Set the header row. */
    void header(const std::vector<std::string> &cells);

    /** Append a data row. */
    void row(const std::vector<std::string> &cells);

    /** Render the table to a string. */
    std::string str() const;

    /** Render and write to stdout. */
    void print() const;

  private:
    std::vector<std::vector<std::string>> rows_;
    bool hasHeader_ = false;
};

/** Format a double with fixed decimals (bench table cells). */
std::string formatFixed(double v, int decimals = 2);

} // namespace twoinone

#endif // TWOINONE_COMMON_STATS_HH
