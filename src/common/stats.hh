/**
 * @file
 * Small statistics helpers shared across evaluation and bench code:
 * running mean/variance accumulator, fraction-correct counter, and a
 * fixed-width table printer used by the paper-reproduction benches.
 */

#ifndef TWOINONE_COMMON_STATS_HH
#define TWOINONE_COMMON_STATS_HH

#include <cstddef>
#include <string>
#include <vector>

namespace twoinone {

/**
 * Welford running mean / variance accumulator.
 */
class RunningStat
{
  public:
    /** Fold one observation into the accumulator. */
    void add(double x);

    /** Number of observations so far. */
    size_t count() const { return n_; }

    /** Mean of observations (0 when empty). */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Unbiased sample variance (0 with fewer than two samples). */
    double variance() const;

    /** Square root of variance(). */
    double stddev() const;

    /** Smallest observation (+inf when empty). */
    double min() const { return min_; }

    /** Largest observation (-inf when empty). */
    double max() const { return max_; }

  private:
    size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 1e300;
    double max_ = -1e300;
};

/**
 * Accuracy counter: fraction of correct predictions.
 */
class Accuracy
{
  public:
    /** Record one prediction outcome. */
    void add(bool correct);

    /** Fraction correct in [0,1]; 0 when empty. */
    double fraction() const;

    /** Fraction correct as a percentage. */
    double percent() const { return 100.0 * fraction(); }

    /** Number of predictions recorded. */
    size_t count() const { return total_; }

  private:
    size_t correct_ = 0;
    size_t total_ = 0;
};

/**
 * Fixed-width ASCII table used by bench binaries to print paper-style
 * rows. Columns auto-size to their widest cell.
 */
class TablePrinter
{
  public:
    /** Set the header row. */
    void header(const std::vector<std::string> &cells);

    /** Append a data row. */
    void row(const std::vector<std::string> &cells);

    /** Render the table to a string. */
    std::string str() const;

    /** Render and write to stdout. */
    void print() const;

  private:
    std::vector<std::vector<std::string>> rows_;
    bool hasHeader_ = false;
};

/** Format a double with fixed decimals (bench table cells). */
std::string formatFixed(double v, int decimals = 2);

} // namespace twoinone

#endif // TWOINONE_COMMON_STATS_HH
