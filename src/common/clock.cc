/**
 * @file
 * Clock implementations.
 */

#include "common/clock.hh"

#include <chrono>

namespace twoinone {

Clock::~Clock() = default;

uint64_t
SteadyClock::nowNs() const
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

const SteadyClock &
SteadyClock::instance()
{
    static const SteadyClock clock;
    return clock;
}

} // namespace twoinone
