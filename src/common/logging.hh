/**
 * @file
 * Error-reporting and status-message primitives, following the gem5
 * discipline: panic() for internal invariant violations (bugs in this
 * library), fatal() for unrecoverable user/configuration errors, and
 * warn()/inform() for non-fatal status messages.
 */

#ifndef TWOINONE_COMMON_LOGGING_HH
#define TWOINONE_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace twoinone {

/**
 * Report an internal invariant violation and abort.
 *
 * Use when something happens that should never happen regardless of
 * user input, i.e. a bug in this library. Calls std::abort().
 *
 * @param msg Description of the violated invariant.
 * @param file Source file (use the panic() macro below).
 * @param line Source line.
 */
[[noreturn]] void panicImpl(const std::string &msg, const char *file,
                            int line);

/**
 * Report an unrecoverable user-facing error and exit(1).
 *
 * Use when the simulation cannot continue due to a condition that is
 * the caller's fault (invalid configuration, impossible parameters).
 */
[[noreturn]] void fatalImpl(const std::string &msg, const char *file,
                            int line);

/** Emit a non-fatal warning to stderr. */
void warnImpl(const std::string &msg);

/** Emit an informational status message to stderr. */
void informImpl(const std::string &msg);

/**
 * Build a message from stream-style arguments.
 *
 * Joins each argument through an std::ostringstream so callers can mix
 * strings and numbers without manual formatting.
 */
template <typename... Args>
std::string
formatMessage(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace twoinone

#define TWOINONE_PANIC(...)                                                  \
    ::twoinone::panicImpl(::twoinone::formatMessage(__VA_ARGS__),            \
                          __FILE__, __LINE__)

#define TWOINONE_FATAL(...)                                                  \
    ::twoinone::fatalImpl(::twoinone::formatMessage(__VA_ARGS__),            \
                          __FILE__, __LINE__)

#define TWOINONE_WARN(...)                                                   \
    ::twoinone::warnImpl(::twoinone::formatMessage(__VA_ARGS__))

#define TWOINONE_INFORM(...)                                                 \
    ::twoinone::informImpl(::twoinone::formatMessage(__VA_ARGS__))

/** Assert an invariant; panics (library bug) when violated. */
#define TWOINONE_ASSERT(cond, ...)                                           \
    do {                                                                     \
        if (!(cond)) {                                                       \
            TWOINONE_PANIC("assertion failed: " #cond " ", __VA_ARGS__);     \
        }                                                                    \
    } while (0)

#endif // TWOINONE_COMMON_LOGGING_HH
