/**
 * @file
 * Implementation of the seeded Rng wrapper.
 */

#include "common/rng.hh"

#include <algorithm>

namespace twoinone {

Rng::Rng(uint64_t seed) : engine_(seed)
{
}

double
Rng::uniform(double lo, double hi)
{
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
}

double
Rng::normal(double mean, double stddev)
{
    std::normal_distribution<double> dist(mean, stddev);
    return dist(engine_);
}

int
Rng::uniformInt(int lo, int hi)
{
    std::uniform_int_distribution<int> dist(lo, hi);
    return dist(engine_);
}

double
Rng::sign()
{
    return bernoulli(0.5) ? 1.0 : -1.0;
}

bool
Rng::bernoulli(double p)
{
    std::bernoulli_distribution dist(p);
    return dist(engine_);
}

Rng
Rng::fork()
{
    // splitmix64 finalizer on the next raw draw decorrelates streams.
    uint64_t z = engine_() + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return Rng(z ^ (z >> 31));
}

} // namespace twoinone
