/**
 * @file
 * Clock abstraction for the serving stack.
 *
 * The async serving front-end (serve/server.hh) makes three kinds of
 * time-driven decisions: closing a micro-batch on age, expiring a
 * request past its deadline, and stamping per-request latencies. All
 * three read time exclusively through this interface so the decisions
 * themselves can be pinned in tests and in the scenario harness: a
 * ManualClock only moves when the test advances it, which makes batch
 * composition, shed counts, and precision traces a pure function of
 * the submitted traffic and the clock script — no wall-clock races in
 * any asserted quantity. Production uses SteadyClock (monotonic).
 */

#ifndef TWOINONE_COMMON_CLOCK_HH
#define TWOINONE_COMMON_CLOCK_HH

#include <atomic>
#include <cstdint>

namespace twoinone {

/** Monotonic nanosecond time source. Implementations must be safe to
 * call from any thread. */
class Clock
{
  public:
    virtual ~Clock();

    /** Nanoseconds since an arbitrary fixed origin (monotonic). */
    virtual uint64_t nowNs() const = 0;
};

/** The real monotonic clock (std::chrono::steady_clock). */
class SteadyClock : public Clock
{
  public:
    uint64_t nowNs() const override;

    /** Process-wide instance (the Server default). */
    static const SteadyClock &instance();
};

/**
 * A clock that only moves when told to. Deterministic serving tests
 * freeze it (age and deadlines never trigger on their own) and advance
 * it explicitly to script exactly which batches close on age and which
 * requests expire.
 */
class ManualClock : public Clock
{
  public:
    explicit ManualClock(uint64_t start_ns = 0) : ns_(start_ns) {}

    uint64_t nowNs() const override
    {
        return ns_.load(std::memory_order_acquire);
    }

    void advanceNs(uint64_t delta)
    {
        ns_.fetch_add(delta, std::memory_order_acq_rel);
    }

    void advanceUs(uint64_t delta_us) { advanceNs(delta_us * 1000); }

    void setNs(uint64_t ns) { ns_.store(ns, std::memory_order_release); }

  private:
    std::atomic<uint64_t> ns_;
};

} // namespace twoinone

#endif // TWOINONE_COMMON_CLOCK_HH
