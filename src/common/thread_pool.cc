/**
 * @file
 * Implementation of the persistent thread pool.
 */

#include "common/thread_pool.hh"

#include <cstdlib>
#include <string>

#include "common/logging.hh"

namespace twoinone {

namespace {

/** Depth of parallelFor task execution on this thread. */
thread_local int tls_parallel_depth = 0;

/** Execute a chunk with the nesting depth marked. */
void
runChunk(const ThreadPool::RangeFn &fn, int64_t begin, int64_t end)
{
    ++tls_parallel_depth;
    fn(begin, end);
    --tls_parallel_depth;
}

} // namespace

/** Per-parallelFor completion state shared by its chunks. */
struct ThreadPool::Sync
{
    std::mutex mu;
    std::condition_variable cv;
    int remaining = 0;
};

ThreadPool::ThreadPool(int threads) : nthreads_(threads < 1 ? 1 : threads)
{
    workers_.reserve(static_cast<size_t>(nthreads_ - 1));
    for (int i = 0; i < nthreads_ - 1; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool(envThreadCount());
    return pool;
}

int
ThreadPool::envThreadCount()
{
    if (const char *env = std::getenv("TWOINONE_THREADS")) {
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end != env && v > 0)
            return static_cast<int>(v);
        TWOINONE_WARN("ignoring invalid TWOINONE_THREADS=", env);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

bool
ThreadPool::inParallelRegion()
{
    return tls_parallel_depth > 0;
}

ThreadPool::ScopedSerial::ScopedSerial()
{
    ++tls_parallel_depth;
}

ThreadPool::ScopedSerial::~ScopedSerial()
{
    --tls_parallel_depth;
}

void
ThreadPool::parallelFor(int64_t begin, int64_t end, int64_t grain,
                        const RangeFn &fn)
{
    int64_t range = end - begin;
    if (range <= 0)
        return;
    if (grain < 1)
        grain = 1;

    int64_t max_chunks = (range + grain - 1) / grain;
    int chunks = static_cast<int>(
        max_chunks < nthreads_ ? max_chunks : nthreads_);

    if (chunks <= 1 || inParallelRegion()) {
        // Run inline WITHOUT marking the region: when a top-level
        // call collapses to one chunk (e.g. batch of 1), nested
        // kernels must still be free to parallelize. When already
        // inside a task the depth is necessarily > 0, so nested
        // calls stay inline either way.
        fn(begin, end);
        return;
    }

    // Fixed contiguous partition: chunk c covers
    // [begin + c*base + min(c, rem), ...) so sizes differ by <= 1.
    int64_t base = range / chunks;
    int64_t rem = range % chunks;

    Sync sync;
    sync.remaining = chunks - 1;

    {
        std::lock_guard<std::mutex> lk(mu_);
        int64_t lo = begin + base + (rem > 0 ? 1 : 0); // after chunk 0
        for (int c = 1; c < chunks; ++c) {
            int64_t len = base + (c < rem ? 1 : 0);
            queue_.push_back(Job{&fn, lo, lo + len, &sync});
            lo += len;
        }
    }
    cv_.notify_all();

    // The caller works on the first chunk itself.
    runChunk(fn, begin, begin + base + (rem > 0 ? 1 : 0));

    std::unique_lock<std::mutex> lk(sync.mu);
    sync.cv.wait(lk, [&sync] { return sync.remaining == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        Job job;
        {
            std::unique_lock<std::mutex> lk(mu_);
            cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
            if (stop_ && queue_.empty())
                return;
            job = queue_.front();
            queue_.pop_front();
        }
        runChunk(*job.fn, job.begin, job.end);
        {
            std::lock_guard<std::mutex> lk(job.sync->mu);
            --job.sync->remaining;
            if (job.sync->remaining == 0)
                job.sync->cv.notify_one();
        }
    }
}

} // namespace twoinone
