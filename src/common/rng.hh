/**
 * @file
 * Deterministic random number generation for reproducible experiments.
 *
 * All stochastic components of the library (dataset synthesis, weight
 * initialization, adversarial random starts, the RPS precision sampler,
 * and the evolutionary optimizer) draw from an explicitly seeded Rng so
 * that every experiment in bench/ is bit-reproducible.
 */

#ifndef TWOINONE_COMMON_RNG_HH
#define TWOINONE_COMMON_RNG_HH

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace twoinone {

/**
 * A seeded pseudo-random source wrapping std::mt19937_64.
 *
 * Thin convenience layer: uniform/normal scalars, integer ranges,
 * Rademacher signs, and index shuffles. Copyable so sub-experiments can
 * fork an independent stream via fork().
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed. */
    explicit Rng(uint64_t seed = 0x21A1ULL);

    /** Uniform real in [lo, hi). */
    double uniform(double lo = 0.0, double hi = 1.0);

    /** Standard normal scaled by stddev around mean. */
    double normal(double mean = 0.0, double stddev = 1.0);

    /** Uniform integer in [lo, hi] inclusive. */
    int uniformInt(int lo, int hi);

    /** +1 or -1 with equal probability. */
    double sign();

    /** true with probability p. */
    bool bernoulli(double p);

    /** Pick an element uniformly from a non-empty vector. */
    template <typename T>
    const T &
    pick(const std::vector<T> &v)
    {
        return v[static_cast<size_t>(
            uniformInt(0, static_cast<int>(v.size()) - 1))];
    }

    /** Shuffle a vector in place (Fisher-Yates via std::shuffle). */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        std::shuffle(v.begin(), v.end(), engine_);
    }

    /** Derive an independent child stream (splitmix of next draw). */
    Rng fork();

    /** Access the underlying engine (for std distributions). */
    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace twoinone

#endif // TWOINONE_COMMON_RNG_HH
