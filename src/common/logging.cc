/**
 * @file
 * Implementation of the logging/error primitives.
 */

#include "common/logging.hh"

#include <cstdlib>
#include <iostream>

namespace twoinone {

[[noreturn]] void
panicImpl(const std::string &msg, const char *file, int line)
{
    std::cerr << "panic: " << msg << " @ " << file << ":" << line
              << std::endl;
    std::abort();
}

[[noreturn]] void
fatalImpl(const std::string &msg, const char *file, int line)
{
    std::cerr << "fatal: " << msg << " @ " << file << ":" << line
              << std::endl;
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    std::cerr << "info: " << msg << std::endl;
}

} // namespace twoinone
