/**
 * @file
 * Persistent fixed-size thread pool with a deterministic parallelFor
 * primitive — the compute substrate underneath the tensor / nn hot
 * paths.
 *
 * Design constraints (deliberate, see README "Building &
 * benchmarking"):
 *
 *  - No work stealing. parallelFor splits [begin, end) into at most
 *    threads() contiguous chunks of near-equal size. Which thread
 *    runs which chunk is scheduling-dependent, but the chunk
 *    *boundaries* are not, and callers are required to make
 *    fn(lo, hi) equivalent to "for i in [lo, hi): work(i)" with
 *    work(i) independent of the chunking. Under that contract every
 *    output element is produced by exactly one work(i) with a fixed
 *    internal accumulation order, so results are bit-identical for
 *    any TWOINONE_THREADS setting. No atomic float accumulation
 *    anywhere.
 *
 *  - Grain-size cutoff: ranges smaller than the grain run inline on
 *    the calling thread, so small tensors never pay dispatch
 *    overhead.
 *
 *  - Nested parallelFor calls (a task calling parallelFor again) run
 *    inline rather than re-entering the pool; outer-level parallelism
 *    wins, e.g. Conv2d parallelizes over batch images and each
 *    per-image GEMM then runs serially on its worker.
 *
 * Pool size comes from TWOINONE_THREADS when set (and > 0), else
 * std::thread::hardware_concurrency().
 */

#ifndef TWOINONE_COMMON_THREAD_POOL_HH
#define TWOINONE_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace twoinone {

/**
 * Fixed-size thread pool. threads() counts the calling thread: a pool
 * of size T spawns T-1 workers and the caller executes the first
 * chunk of every parallelFor itself.
 */
class ThreadPool
{
  public:
    /** Chunk body: fn(lo, hi) processes indices [lo, hi). */
    using RangeFn = std::function<void(int64_t, int64_t)>;

    /** Pool with an explicit thread count (clamped to >= 1). */
    explicit ThreadPool(int threads);

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    ~ThreadPool();

    /**
     * The process-wide pool used by the tensor/nn kernels. Created on
     * first use with envThreadCount() threads; TWOINONE_THREADS is
     * therefore read once per process.
     */
    static ThreadPool &global();

    /** TWOINONE_THREADS when set and > 0, else hardware concurrency. */
    static int envThreadCount();

    /** Total thread count including the caller. */
    int threads() const { return nthreads_; }

    /**
     * Run fn over [begin, end) split into contiguous chunks.
     *
     * Runs inline (no dispatch) when the range is at most @p grain
     * elements, when the pool has a single thread, or when called
     * from inside another parallelFor task. Otherwise the range is
     * split into min(threads(), ceil(range / grain)) chunks whose
     * sizes differ by at most one; the caller runs the first chunk
     * and blocks until all chunks finish.
     */
    void parallelFor(int64_t begin, int64_t end, int64_t grain,
                     const RangeFn &fn);

    /** True while the current thread is executing a parallelFor task. */
    static bool inParallelRegion();

    /**
     * RAII guard that forces parallelFor on the current thread to run
     * inline while alive. Used by tests to compare serial vs parallel
     * results bit-for-bit within one process.
     */
    class ScopedSerial
    {
      public:
        ScopedSerial();
        ~ScopedSerial();
        ScopedSerial(const ScopedSerial &) = delete;
        ScopedSerial &operator=(const ScopedSerial &) = delete;
    };

  private:
    struct Sync;

    struct Job
    {
        const RangeFn *fn = nullptr;
        int64_t begin = 0;
        int64_t end = 0;
        Sync *sync = nullptr;
    };

    void workerLoop();

    int nthreads_;
    std::vector<std::thread> workers_;
    std::deque<Job> queue_;
    std::mutex mu_;
    std::condition_variable cv_;
    bool stop_ = false;
};

} // namespace twoinone

#endif // TWOINONE_COMMON_THREAD_POOL_HH
