/**
 * @file
 * Calibrator implementation.
 */

#include "quant/calibration.hh"

#include "nn/activation.hh"

namespace twoinone {

Calibrator::Calibrator(Network &net)
    : net_(net), acts_(net.actQuantLayers())
{
    TWOINONE_ASSERT(!net_.precisionSet().empty(),
                    "calibration needs a bound precision set");
    TWOINONE_ASSERT(!acts_.empty(),
                    "calibration needs at least one ActQuant layer");
    for (ActQuant *a : acts_)
        a->setCalibrationBanks(net_.bnBanks());
}

void
Calibrator::calibrate(const std::vector<Tensor> &batches)
{
    TWOINONE_ASSERT(!batches.empty(), "calibration needs batches");
    int restore = net_.activePrecision();

    for (ActQuant *a : acts_)
        a->beginCalibration();
    // Ranges depend on the execution precision (quantized weights
    // change every layer's activations), so each candidate records
    // into its own bank — the bank QuantState::bnIndex selects at
    // inference, exactly like SBN statistics.
    for (int bits : net_.precisionSet().bits()) {
        net_.setPrecision(bits);
        for (const Tensor &x : batches)
            net_.forward(x, /*train=*/false);
    }
    for (ActQuant *a : acts_)
        a->endCalibration();

    setStaticScale(true);
    calibrated_ = true;
    net_.setPrecision(restore);
}

void
Calibrator::setStaticScale(bool on)
{
    for (ActQuant *a : acts_)
        a->setStaticScale(on);
}

} // namespace twoinone
