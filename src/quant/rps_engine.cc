/**
 * @file
 * RpsEngine implementation.
 */

#include "quant/rps_engine.hh"

#include "common/thread_pool.hh"

namespace twoinone {

RpsEngine::RpsEngine(Network &net) : RpsEngine(net, net.precisionSet())
{
}

RpsEngine::RpsEngine(Network &net, PrecisionSet cache_set)
    : net_(net), cacheSet_(std::move(cache_set)),
      layers_(net.weightQuantizedLayers())
{
    TWOINONE_ASSERT(!cacheSet_.empty(),
                    "RpsEngine needs a non-empty precision set");
    for (int bits : cacheSet_.bits()) {
        TWOINONE_ASSERT(net_.precisionSet().contains(bits),
                        "cache precision ", bits,
                        " not in the network's bound set ",
                        net_.precisionSet().name());
    }
    cache_.resize(layers_.size());
    for (auto &per_layer : cache_)
        per_layer.resize(cacheSet_.size());
    refresh();
}

RpsEngine::~RpsEngine()
{
    detach();
}

void
RpsEngine::refresh()
{
    const std::vector<int> &bits = cacheSet_.bits();
    const int64_t nprec = static_cast<int64_t>(bits.size());
    const int64_t total = static_cast<int64_t>(layers_.size()) * nprec;
    // (layer, precision) pairs are independent; grain 1 gives
    // deterministic fixed chunking, and the fake-quant passes inside
    // run inline (nested parallelFor), so each entry is bit-identical
    // to a serially built one.
    ThreadPool::global().parallelFor(
        0, total, 1, [&](int64_t lo, int64_t hi) {
            for (int64_t t = lo; t < hi; ++t) {
                size_t l = static_cast<size_t>(t / nprec);
                size_t p = static_cast<size_t>(t % nprec);
                cache_[l][p] = LinearQuantizer::fakeQuantSymmetric(
                    layers_[l]->masterWeight(),
                    bits[p]);
            }
        });
}

void
RpsEngine::setPrecision(int bits)
{
    if (bits == 0 || !cacheSet_.contains(bits)) {
        // Full precision, or a bound-set precision the engine was not
        // asked to cache: run uncached.
        for (WeightQuantizedLayer *l : layers_)
            l->setWeightCache(nullptr);
        net_.setPrecision(bits);
        return;
    }
    size_t idx = static_cast<size_t>(cacheSet_.indexOf(bits));
    for (size_t l = 0; l < layers_.size(); ++l)
        layers_[l]->setWeightCache(&cache_[l][idx]);
    net_.setPrecision(bits);
}

Tensor
RpsEngine::forwardAt(int bits, const Tensor &x)
{
    setPrecision(bits);
    return net_.forward(x, /*train=*/false);
}

std::vector<int>
RpsEngine::predictAt(int bits, const Tensor &x)
{
    setPrecision(bits);
    return net_.predict(x);
}

Tensor
RpsEngine::forwardRandom(const Tensor &x, Rng &rng, int *bits_out)
{
    int bits = samplePrecision(rng);
    if (bits_out)
        *bits_out = bits;
    return forwardAt(bits, x);
}

void
RpsEngine::detach()
{
    for (WeightQuantizedLayer *l : layers_)
        l->setWeightCache(nullptr);
}

size_t
RpsEngine::cacheBytes() const
{
    size_t bytes = 0;
    for (const auto &per_layer : cache_)
        for (const QuantResult &r : per_layer)
            bytes += (r.values.size() + r.steMask.size()) * sizeof(float);
    return bytes;
}

} // namespace twoinone
