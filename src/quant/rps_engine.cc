/**
 * @file
 * RpsEngine implementation.
 */

#include "quant/rps_engine.hh"

#include "common/thread_pool.hh"

namespace twoinone {

RpsEngine::RpsEngine(Network &net) : RpsEngine(net, net.precisionSet())
{
}

RpsEngine::RpsEngine(Network &net, PrecisionSet cache_set)
    : RpsEngine(net, std::move(cache_set), DeferBuild{})
{
    refresh();
}

RpsEngine::RpsEngine(Network &net, PrecisionSet cache_set, DeferBuild)
    : net_(net), cacheSet_(std::move(cache_set)),
      layers_(net.weightQuantizedLayers())
{
    TWOINONE_ASSERT(!cacheSet_.empty(),
                    "RpsEngine needs a non-empty precision set");
    for (int bits : cacheSet_.bits()) {
        TWOINONE_ASSERT(net_.precisionSet().contains(bits),
                        "cache precision ", bits,
                        " not in the network's bound set ",
                        net_.precisionSet().name());
    }
    cache_.resize(layers_.size());
    for (auto &per_layer : cache_)
        per_layer.resize(cacheSet_.size());
    notedVersion_.assign(layers_.size(), 0);
    pinnedIdx_.assign(cacheSet_.size(), false);
}

RpsEngine::~RpsEngine()
{
    detach();
}

bool
RpsEngine::cellStale(size_t layer, size_t prec) const
{
    const CacheEntry &e = cache_[layer][prec];
    return !e.built ||
           e.builtVersion != layers_[layer]->masterWeightVersion();
}

bool
RpsEngine::tryHydrate(size_t layer, size_t prec)
{
    if (!hydrator_)
        return false;
    // The artifact's cells were quantized from the masters as saved;
    // once a layer trains past that version its persisted codes are
    // wrong — rebuild instead.
    if (layers_[layer]->masterWeightVersion() !=
        hydratorVersion_[layer])
        return false;
    HydratedCell h;
    if (!hydrator_(layer, cacheSet_.bits()[prec], h))
        return false;
    // Defensive geometry check: a malformed (but parseable) cell must
    // fall back to a rebuild, not corrupt the install.
    if (h.codes.bits != cacheSet_.bits()[prec] ||
        h.codes.size() != layers_[layer]->masterWeight().size() ||
        h.steMask.size() != h.codes.size())
        return false;
    CacheEntry &e = cache_[layer][prec];
    e.codes = std::move(h.codes);
    e.floats.steMask = std::move(h.steMask);
    e.floats.values = Tensor();
    e.floats.scale = e.codes.scale;
    e.floats.bits = e.codes.bits;
    e.floatsReady = false;
    if (h.hasPack) {
        e.packed = std::move(h.packed);
        e.packedReady = true;
    } else if (e.packedReady) {
        packEntry(e); // keep a live tile pack current
    }
    e.built = true;
    e.builtVersion = layers_[layer]->masterWeightVersion();
    cellHydrations_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

void
RpsEngine::ensureCell(size_t layer, size_t prec, bool want_floats)
{
    CacheEntry &e = cache_[layer][prec];
    if (!e.built)
        tryHydrate(layer, prec);
    if (cellStale(layer, prec))
        rebuildCell(layer, prec, want_floats);
}

void
RpsEngine::packEntry(CacheEntry &e)
{
    // Weight codes are row-major [rows, reduction] for both kernel
    // geometries: Conv2d [K, C*k*k] and Linear [out, in].
    const int m = e.codes.shape.empty() ? 0 : e.codes.shape[0];
    const int k =
        m > 0 ? static_cast<int>(e.codes.size()) / m : 0;
    gemm::packWeights(e.codes.codes.data(), m, k, e.codes.bits, e.packed);
    e.packedReady = true;
    packBuilds_.fetch_add(1, std::memory_order_relaxed);
}

void
RpsEngine::rebuildCell(size_t layer, size_t prec, bool want_floats)
{
    CacheEntry &e = cache_[layer][prec];
    // A live (or demanded) float view is rebuilt in the same fused
    // pass so installed pointers stay valid AND current; never-used
    // views stay lazy.
    bool floats = want_floats || e.floatsReady;
    QuantTensor::quantizeSymmetricInto(
        layers_[layer]->masterWeight(), cacheSet_.bits()[prec], e.codes,
        &e.floats.steMask, floats ? &e.floats.values : nullptr);
    e.floats.scale = e.codes.scale;
    e.floats.bits = e.codes.bits;
    e.floatsReady = floats;
    if (e.packedReady)
        packEntry(e); // keep installed pack pointers current
    e.built = true;
    e.builtVersion = layers_[layer]->masterWeightVersion();
    columnRebuilds_.fetch_add(1, std::memory_order_relaxed);
}

void
RpsEngine::rebuildLayers(const std::vector<size_t> &which)
{
    const int64_t nprec = static_cast<int64_t>(cacheSet_.size());
    // (layer, precision) pairs are independent; grain 1 gives
    // deterministic fixed chunking, and the quantization passes inside
    // run inline (nested parallelFor), so each entry is bit-identical
    // to a serially built one.
    ThreadPool::global().parallelFor(
        0, static_cast<int64_t>(which.size()) * nprec, 1,
        [&](int64_t lo, int64_t hi) {
            for (int64_t t = lo; t < hi; ++t) {
                size_t l = which[static_cast<size_t>(t / nprec)];
                size_t p = static_cast<size_t>(t % nprec);
                rebuildCell(l, p, /*want_floats=*/false);
            }
        });
    for (size_t l : which)
        notedVersion_[l] = layers_[l]->masterWeightVersion();
}

void
RpsEngine::refresh()
{
    std::vector<size_t> all(layers_.size());
    for (size_t l = 0; l < layers_.size(); ++l)
        all[l] = l;
    rebuildLayers(all);
    evictToBudget();
}

size_t
RpsEngine::refreshDirty()
{
    // Note which layers moved; their cells rebuild lazily when
    // setPrecision next installs a column — except the column that is
    // installed RIGHT NOW, which forwards may consume before any
    // switch (e.g. Free training replays several optimizer steps per
    // precision draw), so it is brought current here.
    size_t noted = 0;
    for (size_t l = 0; l < layers_.size(); ++l) {
        uint64_t v = layers_[l]->masterWeightVersion();
        if (v != notedVersion_[l]) {
            notedVersion_[l] = v;
            ++noted;
        }
    }
    if (noted > 0 && installedIdx_ >= 0) {
        size_t idx = static_cast<size_t>(installedIdx_);
        ThreadPool::global().parallelFor(
            0, static_cast<int64_t>(layers_.size()), 1,
            [&](int64_t lo, int64_t hi) {
                for (int64_t l = lo; l < hi; ++l) {
                    size_t ls = static_cast<size_t>(l);
                    if (cellStale(ls, idx))
                        rebuildCell(ls, idx, /*want_floats=*/true);
                }
            });
    }
    return noted;
}

void
RpsEngine::setPrecision(int bits)
{
    if (bits == 0 || !cacheSet_.contains(bits)) {
        // Full precision, or a bound-set precision the engine was not
        // asked to cache: run uncached.
        for (WeightQuantizedLayer *l : layers_) {
            l->setWeightCache(nullptr);
            l->setWeightCodes(nullptr);
            l->setWeightPacked(nullptr);
        }
        installedIdx_ = -1;
        net_.setPrecision(bits);
        return;
    }
    size_t idx = static_cast<size_t>(cacheSet_.indexOf(bits));
    // Bring the installed column current: hydrate absent cells from
    // the streaming artifact when one is attached, re-quantize cells
    // whose master weights moved (the lazy column rebuild — only the
    // column being consumed pays), and materialize float views on
    // first use (codes are the source of truth; float(code) * scale
    // is exactly the fake-quant grid value).
    ThreadPool::global().parallelFor(
        0, static_cast<int64_t>(layers_.size()), 1,
        [&](int64_t lo, int64_t hi) {
            for (int64_t l = lo; l < hi; ++l) {
                size_t ls = static_cast<size_t>(l);
                CacheEntry &e = cache_[ls][idx];
                ensureCell(ls, idx, /*want_floats=*/true);
                if (!e.floatsReady) {
                    e.codes.dequantizeInto(e.floats.values);
                    e.floatsReady = true;
                }
                // First install of this cell: build the tile-packed
                // kernel weights (rebuilds keep them current after
                // this). Packing is a data-layout copy, not a
                // quantization, so it does not count as a column
                // rebuild — checkpoint warm starts stay at zero.
                if (!e.packedReady)
                    packEntry(e);
            }
        });
    const uint64_t tick = ++useTick_;
    for (size_t l = 0; l < layers_.size(); ++l) {
        cache_[l][idx].lastUse = tick;
        layers_[l]->setWeightCache(&cache_[l][idx].floats);
        layers_[l]->setWeightCodes(&cache_[l][idx].codes);
        layers_[l]->setWeightPacked(&cache_[l][idx].packed);
    }
    installedIdx_ = static_cast<int>(idx);
    net_.setPrecision(bits);
    // The install may have materialized a whole column — re-enforce
    // the byte ceiling now that the column is protected.
    evictToBudget();
}

Tensor
RpsEngine::forwardAt(int bits, const Tensor &x)
{
    setPrecision(bits);
    return net_.forward(x, /*train=*/false);
}

Tensor
RpsEngine::forwardQuantizedAt(int bits, const Tensor &x)
{
    setPrecision(bits);
    return net_.forwardQuantized(x);
}

std::vector<int>
RpsEngine::predictAt(int bits, const Tensor &x)
{
    setPrecision(bits);
    return net_.predict(x);
}

std::vector<int>
RpsEngine::predictQuantizedAt(int bits, const Tensor &x)
{
    setPrecision(bits);
    return net_.predictQuantized(x);
}

Tensor
RpsEngine::forwardRandom(const Tensor &x, Rng &rng, int *bits_out)
{
    int bits = samplePrecision(rng);
    if (bits_out)
        *bits_out = bits;
    return forwardAt(bits, x);
}

void
RpsEngine::detach()
{
    for (WeightQuantizedLayer *l : layers_) {
        l->setWeightCache(nullptr);
        l->setWeightCodes(nullptr);
        l->setWeightPacked(nullptr);
    }
    installedIdx_ = -1;
}

const QuantTensor &
RpsEngine::codesFor(size_t layer, int bits)
{
    TWOINONE_ASSERT(layer < cache_.size(), "layer index out of range");
    TWOINONE_ASSERT(cacheSet_.contains(bits), "precision ", bits,
                    " not cached");
    size_t p = static_cast<size_t>(cacheSet_.indexOf(bits));
    ensureCell(layer, p, /*want_floats=*/false);
    cache_[layer][p].lastUse = ++useTick_;
    return cache_[layer][p].codes;
}

const Tensor &
RpsEngine::steMaskFor(size_t layer, int bits)
{
    TWOINONE_ASSERT(layer < cache_.size(), "layer index out of range");
    TWOINONE_ASSERT(cacheSet_.contains(bits), "precision ", bits,
                    " not cached");
    size_t p = static_cast<size_t>(cacheSet_.indexOf(bits));
    ensureCell(layer, p, /*want_floats=*/false);
    cache_[layer][p].lastUse = ++useTick_;
    return cache_[layer][p].floats.steMask;
}

void
RpsEngine::importCellImpl(size_t layer, size_t prec, QuantTensor codes,
                          Tensor ste_mask)
{
    TWOINONE_ASSERT(layer < cache_.size() && prec < cacheSet_.size(),
                    "cache cell out of range");
    TWOINONE_ASSERT(codes.bits == cacheSet_.bits()[prec],
                    "imported cell precision mismatch");
    TWOINONE_ASSERT(codes.size() == layers_[layer]->masterWeight().size(),
                    "imported cell size mismatch");
    CacheEntry &e = cache_[layer][prec];
    e.codes = std::move(codes);
    e.floats.steMask = std::move(ste_mask);
    e.floats.values = Tensor();
    e.floats.scale = e.codes.scale;
    e.floats.bits = e.codes.bits;
    e.floatsReady = false;
    if (e.packedReady)
        packEntry(e); // keep a live tile pack current
    e.built = true;
    e.builtVersion = layers_[layer]->masterWeightVersion();
    e.lastUse = ++useTick_;
}

void
RpsEngine::importCell(size_t layer, size_t prec, QuantTensor codes,
                      Tensor ste_mask)
{
    importCellImpl(layer, prec, std::move(codes), std::move(ste_mask));
    evictToBudget();
}

void
RpsEngine::importCell(size_t layer, size_t prec, QuantTensor codes,
                      Tensor ste_mask, gemm::PackedIntWeights packed)
{
    TWOINONE_ASSERT(layer < cache_.size() && prec < cacheSet_.size(),
                    "cache cell out of range");
    const int m = codes.shape.empty() ? 0 : codes.shape[0];
    const int k = m > 0 ? static_cast<int>(codes.size()) / m : 0;
    TWOINONE_ASSERT(packed.m == m && packed.k == k &&
                        packed.bits == codes.bits,
                    "imported pack geometry does not match its codes");
    importCellImpl(layer, prec, std::move(codes), std::move(ste_mask));
    CacheEntry &e = cache_[layer][prec];
    e.packed = std::move(packed);
    e.packedReady = true;
    evictToBudget();
}

const gemm::PackedIntWeights &
RpsEngine::packedFor(size_t layer, int bits)
{
    TWOINONE_ASSERT(layer < cache_.size(), "layer index out of range");
    TWOINONE_ASSERT(cacheSet_.contains(bits), "precision ", bits,
                    " not cached");
    size_t p = static_cast<size_t>(cacheSet_.indexOf(bits));
    ensureCell(layer, p, /*want_floats=*/false);
    CacheEntry &e = cache_[layer][p];
    e.lastUse = ++useTick_;
    if (!e.packedReady)
        packEntry(e);
    return e.packed;
}

uint64_t
RpsEngine::columnRebuilds() const
{
    return columnRebuilds_.load(std::memory_order_relaxed);
}

uint64_t
RpsEngine::packBuilds() const
{
    return packBuilds_.load(std::memory_order_relaxed);
}

uint64_t
RpsEngine::cacheHits() const
{
    uint64_t total = 0;
    for (WeightQuantizedLayer *l : layers_)
        total += l->cacheHits();
    return total;
}

uint64_t
RpsEngine::cacheMisses() const
{
    uint64_t total = 0;
    for (WeightQuantizedLayer *l : layers_)
        total += l->cacheMisses();
    return total;
}

void
RpsEngine::resetCacheStats()
{
    for (WeightQuantizedLayer *l : layers_)
        l->resetCacheStats();
}

size_t
RpsEngine::cellBytes(const CacheEntry &e)
{
    size_t bytes = e.codes.bytes();
    bytes += e.floats.steMask.size() * sizeof(float);
    if (e.floatsReady)
        bytes += e.floats.values.size() * sizeof(float);
    bytes += e.packed.bytes();
    return bytes;
}

size_t
RpsEngine::cacheBytes() const
{
    size_t bytes = 0;
    for (const auto &per_layer : cache_)
        for (const CacheEntry &e : per_layer)
            bytes += cellBytes(e);
    return bytes;
}

void
RpsEngine::setCacheConfig(EngineCacheConfig cfg)
{
    pinnedIdx_.assign(cacheSet_.size(), false);
    for (int b : cfg.pinnedBits) {
        TWOINONE_ASSERT(cacheSet_.contains(b), "pinned precision ", b,
                        " not in the cached set ", cacheSet_.name());
        pinnedIdx_[static_cast<size_t>(cacheSet_.indexOf(b))] = true;
    }
    cacheCfg_ = std::move(cfg);
    evictToBudget();
}

void
RpsEngine::setCellHydrator(CellHydrator hydrator)
{
    hydrator_ = std::move(hydrator);
    hydratorVersion_.resize(layers_.size());
    for (size_t l = 0; l < layers_.size(); ++l)
        hydratorVersion_[l] = layers_[l]->masterWeightVersion();
}

void
RpsEngine::evictToBudget()
{
    if (cacheCfg_.budgetBytes == 0)
        return;
    size_t total = cacheBytes();
    while (total > cacheCfg_.budgetBytes) {
        // LRU victim among the evictable cells: never the installed
        // column (layers hold live pointers into it) and never a
        // pinned precision. When only protected bytes remain the
        // budget is infeasible — stop rather than break serving; the
        // budget is a ceiling on *idle* cells, not on the working set.
        CacheEntry *victim = nullptr;
        for (auto &per_layer : cache_) {
            for (size_t p = 0; p < per_layer.size(); ++p) {
                CacheEntry &e = per_layer[p];
                if (!e.built || pinnedIdx_[p] ||
                    (installedIdx_ >= 0 &&
                     p == static_cast<size_t>(installedIdx_)))
                    continue;
                if (victim == nullptr || e.lastUse < victim->lastUse)
                    victim = &e;
            }
        }
        if (victim == nullptr)
            break;
        total -= cellBytes(*victim);
        *victim = CacheEntry();
        cacheEvictions_.fetch_add(1, std::memory_order_relaxed);
    }
}

bool
RpsEngine::cellResident(size_t layer, int bits) const
{
    TWOINONE_ASSERT(layer < cache_.size(), "layer index out of range");
    TWOINONE_ASSERT(cacheSet_.contains(bits), "precision ", bits,
                    " not cached");
    size_t p = static_cast<size_t>(cacheSet_.indexOf(bits));
    return cache_[layer][p].built;
}

uint64_t
RpsEngine::cacheEvictions() const
{
    return cacheEvictions_.load(std::memory_order_relaxed);
}

uint64_t
RpsEngine::cellHydrations() const
{
    return cellHydrations_.load(std::memory_order_relaxed);
}

} // namespace twoinone
