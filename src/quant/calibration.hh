/**
 * @file
 * Activation-range calibration: the pass that turns dynamic per-batch
 * activation quantization into static-scale quantization.
 *
 * The dynamic quantizer re-derives each ActQuant's range from every
 * input batch — one max-reduction per quantizer per forward. Real
 * accelerator deployments instead run a handful of calibration batches
 * once, record each quantizer's observed range per execution
 * precision, and bake the resulting scale into the datapath (the
 * paper folds it into the BN multiply, Sec. 2.4). Calibrator does
 * exactly that: it forwards N batches at every candidate precision of
 * the bound set, records the per-(quantizer, precision) maxima into
 * the ActQuant range banks (indexed like the SBN banks), and flips
 * the network's quantizers to static-scale mode.
 *
 * Determinism: recording uses the same bit-exact chunked max
 * reduction as the dynamic path, so the recorded ranges — and every
 * forward after calibration — are bit-identical for any
 * TWOINONE_THREADS setting. With static mode disabled (or no
 * calibration run), the dynamic path is untouched.
 */

#ifndef TWOINONE_QUANT_CALIBRATION_HH
#define TWOINONE_QUANT_CALIBRATION_HH

#include <vector>

#include "nn/network.hh"

namespace twoinone {

/**
 * Records activation ranges and enables static-scale quantization on
 * a network. Lightweight: holds only the layer pointers.
 */
class Calibrator
{
  public:
    /** Bind to @p net (must have a non-empty precision set and at
     * least one ActQuant). */
    explicit Calibrator(Network &net);

    /**
     * Run the calibration pass over @p batches: forward each batch at
     * every candidate precision while the quantizers record observed
     * maxima, then enable static-scale mode. The network's active
     * precision is restored on return.
     */
    void calibrate(const std::vector<Tensor> &batches);

    /** Toggle static-scale mode on every quantizer (calibrate()
     * enables it; disabling restores the dynamic path). */
    void setStaticScale(bool on);

    /** Whether calibrate() has run. */
    bool calibrated() const { return calibrated_; }

    /** The bound quantizers, in network order (test access). */
    const std::vector<ActQuant *> &quantizers() const { return acts_; }

  private:
    Network &net_;
    std::vector<ActQuant *> acts_;
    bool calibrated_ = false;
};

} // namespace twoinone

#endif // TWOINONE_QUANT_CALIBRATION_HH
