/**
 * @file
 * Implementation of the linear quantizer.
 */

#include "quant/linear_quantizer.hh"

#include <cmath>

#include "tensor/ops.hh"

namespace twoinone {

int
LinearQuantizer::signedQmax(int bits)
{
    TWOINONE_ASSERT(bits >= 1 && bits <= 31, "signedQmax bits=", bits);
    if (bits == 1)
        return 1; // binary {-1, +1} grid
    return (1 << (bits - 1)) - 1;
}

int
LinearQuantizer::unsignedQmax(int bits)
{
    TWOINONE_ASSERT(bits >= 1 && bits <= 31, "unsignedQmax bits=", bits);
    return (1 << bits) - 1;
}

QuantResult
LinearQuantizer::fakeQuantSymmetric(const Tensor &x, int bits)
{
    QuantResult r;
    if (bits <= 0) {
        r.values = x;
        r.steMask = Tensor::ones(x.shape());
        r.scale = 1.0f;
        return r;
    }

    float max_abs = ops::maxAbs(x);
    r.values = Tensor(x.shape());
    r.steMask = Tensor::ones(x.shape());
    if (max_abs == 0.0f) {
        r.scale = 0.0f;
        return r;
    }

    int qmax = signedQmax(bits);
    float scale = max_abs / static_cast<float>(qmax);
    r.scale = scale;
    for (size_t i = 0; i < x.size(); ++i) {
        float q = std::nearbyint(x[i] / scale);
        if (q > qmax) {
            q = static_cast<float>(qmax);
            r.steMask[i] = 0.0f;
        } else if (q < -qmax) {
            q = static_cast<float>(-qmax);
            r.steMask[i] = 0.0f;
        }
        r.values[i] = q * scale;
    }
    return r;
}

QuantResult
LinearQuantizer::fakeQuantUnsigned(const Tensor &x, int bits)
{
    QuantResult r;
    if (bits <= 0) {
        r.values = x;
        r.steMask = Tensor::ones(x.shape());
        r.scale = 1.0f;
        return r;
    }

    float max_v = 0.0f;
    for (size_t i = 0; i < x.size(); ++i)
        max_v = std::max(max_v, x[i]);

    r.values = Tensor(x.shape());
    r.steMask = Tensor::ones(x.shape());
    if (max_v <= 0.0f) {
        r.scale = 0.0f;
        // Entirely non-positive input: everything clips to zero.
        for (size_t i = 0; i < x.size(); ++i)
            r.steMask[i] = (x[i] == 0.0f) ? 1.0f : 0.0f;
        return r;
    }

    int qmax = unsignedQmax(bits);
    float scale = max_v / static_cast<float>(qmax);
    r.scale = scale;
    for (size_t i = 0; i < x.size(); ++i) {
        float q = std::nearbyint(x[i] / scale);
        if (q < 0.0f) {
            q = 0.0f;
            r.steMask[i] = 0.0f;
        } else if (q > qmax) {
            q = static_cast<float>(qmax);
            r.steMask[i] = 0.0f;
        }
        r.values[i] = q * scale;
    }
    return r;
}

std::vector<int32_t>
LinearQuantizer::quantizeToIntSymmetric(const Tensor &x, int bits,
                                        float *scale_out)
{
    std::vector<int32_t> codes(x.size(), 0);
    float max_abs = ops::maxAbs(x);
    int qmax = signedQmax(bits);
    float scale = (max_abs == 0.0f)
                      ? 0.0f
                      : max_abs / static_cast<float>(qmax);
    if (scale_out)
        *scale_out = scale;
    if (scale == 0.0f)
        return codes;
    for (size_t i = 0; i < x.size(); ++i) {
        float q = std::nearbyint(x[i] / scale);
        q = std::min(static_cast<float>(qmax),
                     std::max(static_cast<float>(-qmax), q));
        codes[i] = static_cast<int32_t>(q);
    }
    return codes;
}

} // namespace twoinone
