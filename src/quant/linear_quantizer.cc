/**
 * @file
 * Implementation of the linear quantizer.
 *
 * The max reductions run through ops::maxAbs / ops::maxVal (chunked
 * parallel, bit-identical to serial); the grid pass writes disjoint
 * elements on parallelFor. TWOINONE_BACKEND=naive keeps both passes
 * serial, mirroring the gemm reference path.
 */

#include "quant/linear_quantizer.hh"

#include <algorithm>
#include <cmath>

#include "tensor/ops.hh"

namespace twoinone {

namespace {

// Minimum elements per chunk for the parallel grid pass; matches the
// element-wise grain in tensor/ops.cc.
constexpr int64_t kQuantGrain = 1 << 15;

/** The backend-gated grid pass: parallel above the grain cutoff, the
 * naive reference backend keeps it serial. */
void
quantPass(int64_t n, const std::function<void(int64_t, int64_t)> &fn)
{
    ops::gatedParallelFor(n, kQuantGrain, fn);
}

} // namespace

int
LinearQuantizer::signedQmax(int bits)
{
    TWOINONE_ASSERT(bits >= 1 && bits <= 31, "signedQmax bits=", bits);
    if (bits == 1)
        return 1; // binary {-1, +1} grid
    return (1 << (bits - 1)) - 1;
}

int
LinearQuantizer::unsignedQmax(int bits)
{
    TWOINONE_ASSERT(bits >= 1 && bits <= 31, "unsignedQmax bits=", bits);
    return (1 << bits) - 1;
}

QuantResult
LinearQuantizer::fakeQuantSymmetric(const Tensor &x, int bits)
{
    QuantResult r;
    if (bits <= 0) {
        r.values = x;
        r.steMask = Tensor::ones(x.shape());
        r.scale = 1.0f;
        return r;
    }
    r.bits = bits;

    float max_abs = ops::maxAbs(x);
    r.values = Tensor(x.shape());
    r.steMask = Tensor::ones(x.shape());
    if (max_abs == 0.0f) {
        r.scale = 0.0f;
        return r;
    }

    int qmax = signedQmax(bits);
    float scale = max_abs / static_cast<float>(qmax);
    r.scale = scale;
    const float *in = x.data();
    float *values = r.values.data();
    float *mask = r.steMask.data();
    quantPass(static_cast<int64_t>(x.size()), [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
            float q = std::nearbyint(in[i] / scale);
            if (q > qmax) {
                q = static_cast<float>(qmax);
                mask[i] = 0.0f;
            } else if (q < -qmax) {
                q = static_cast<float>(-qmax);
                mask[i] = 0.0f;
            }
            values[i] = q * scale;
        }
    });
    return r;
}

QuantResult
LinearQuantizer::fakeQuantUnsigned(const Tensor &x, int bits)
{
    if (bits <= 0)
        return fakeQuantUnsignedStatic(x, bits, 0.0f);
    return fakeQuantUnsignedStatic(x, bits, ops::maxVal(x));
}

namespace {

/**
 * The shared unsigned grid pass: values (and, when @p mask is
 * non-null, the STE mask) of the static-range fake quantization.
 * Both public forms run exactly this, so they can never diverge.
 */
void
unsignedGridPass(const float *in, size_t n, int qmax, float scale,
                 float *values, float *mask)
{
    ops::gatedParallelFor(
        static_cast<int64_t>(n), kQuantGrain,
        [&](int64_t lo, int64_t hi) {
            for (int64_t i = lo; i < hi; ++i) {
                float q = std::nearbyint(in[i] / scale);
                if (q < 0.0f) {
                    q = 0.0f;
                    if (mask)
                        mask[i] = 0.0f;
                } else if (q > qmax) {
                    q = static_cast<float>(qmax);
                    if (mask)
                        mask[i] = 0.0f;
                }
                values[i] = q * scale;
            }
        });
}

} // namespace

QuantResult
LinearQuantizer::fakeQuantUnsignedStatic(const Tensor &x, int bits,
                                         float max_v)
{
    QuantResult r;
    if (bits <= 0) {
        r.values = x;
        r.steMask = Tensor::ones(x.shape());
        r.scale = 1.0f;
        return r;
    }
    r.bits = bits;

    r.values = Tensor(x.shape());
    r.steMask = Tensor::ones(x.shape());
    const float *in = x.data();
    float *mask = r.steMask.data();
    if (max_v <= 0.0f) {
        r.scale = 0.0f;
        // Entirely non-positive input: everything clips to zero.
        quantPass(static_cast<int64_t>(x.size()),
                  [&](int64_t lo, int64_t hi) {
                      for (int64_t i = lo; i < hi; ++i)
                          mask[i] = (in[i] == 0.0f) ? 1.0f : 0.0f;
                  });
        return r;
    }

    int qmax = unsignedQmax(bits);
    r.scale = max_v / static_cast<float>(qmax);
    unsignedGridPass(in, x.size(), qmax, r.scale, r.values.data(), mask);
    return r;
}

void
LinearQuantizer::fakeQuantUnsignedStaticValuesInto(const Tensor &x,
                                                   int bits, float max_v,
                                                   Tensor &values_out)
{
    values_out.ensure(x.shape());
    if (bits <= 0) {
        std::copy(x.data(), x.data() + x.size(), values_out.data());
        return;
    }
    if (max_v <= 0.0f) {
        values_out.fill(0.0f);
        return;
    }
    int qmax = unsignedQmax(bits);
    float scale = max_v / static_cast<float>(qmax);
    unsignedGridPass(x.data(), x.size(), qmax, scale,
                     values_out.data(), nullptr);
}

std::vector<int32_t>
LinearQuantizer::quantizeToIntSymmetric(const Tensor &x, int bits,
                                        float *scale_out)
{
    std::vector<int32_t> codes(x.size(), 0);
    float max_abs = ops::maxAbs(x);
    int qmax = signedQmax(bits);
    float scale = (max_abs == 0.0f)
                      ? 0.0f
                      : max_abs / static_cast<float>(qmax);
    if (scale_out)
        *scale_out = scale;
    if (scale == 0.0f)
        return codes;
    const float *in = x.data();
    quantPass(static_cast<int64_t>(x.size()), [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
            float q = std::nearbyint(in[i] / scale);
            q = std::min(static_cast<float>(qmax),
                         std::max(static_cast<float>(-qmax), q));
            codes[static_cast<size_t>(i)] = static_cast<int32_t>(q);
        }
    });
    return codes;
}

} // namespace twoinone
