/**
 * @file
 * RpsEngine: the precision-switchable inference engine behind RPS
 * serving (paper Alg. 1, RPS inference).
 *
 * On construction the engine pre-quantizes every weight tensor of the
 * bound network at every candidate precision of the network's
 * PrecisionSet, parallelized across layers x precisions on the global
 * thread pool. A precision switch then installs the cached tensors
 * into the layers — O(#layers) pointer installs — instead of
 * re-running fakeQuantSymmetric over all master weights, and the
 * forward pass is the plain GEMM path on cached weights,
 * bit-identical to the uncached path (the cache stores exactly what
 * fakeQuantSymmetric would produce).
 *
 * Cache layout: one QuantResult (grid values + STE mask + scale) per
 * (weight layer, candidate precision) pair, i.e. two float tensors
 * per weight tensor per candidate — about 8 * |set| bytes per weight
 * scalar (cacheBytes() reports the exact total). Entries live in
 * stable storage: refresh() rewrites them in place, so installed
 * pointers remain valid across refreshes.
 *
 * The engine caches *weights only*; activations are quantized on the
 * fly each forward because their dynamic range depends on the input.
 * Master weights must not change while caches are installed — call
 * refresh() after any training step before inferring again. Layers
 * that ran a cached forward keep a pointer into the entry for their
 * backward STE mask, so keep the engine alive until the backward
 * passes that depend on a cached forward have run.
 */

#ifndef TWOINONE_QUANT_RPS_ENGINE_HH
#define TWOINONE_QUANT_RPS_ENGINE_HH

#include <vector>

#include "nn/network.hh"

namespace twoinone {

/**
 * Per-precision quantized-weight cache + switch/forward façade over a
 * Network. Non-copyable; detaches its caches on destruction.
 */
class RpsEngine
{
  public:
    /**
     * Build the cache for @p net's full bound PrecisionSet (which
     * must be non-empty); the network's active precision is left
     * untouched.
     */
    explicit RpsEngine(Network &net);

    /**
     * Build the cache for @p cache_set only — a non-empty subset of
     * the network's bound set. Evaluations that sample from a
     * restricted set (e.g. Fig. 11 variants) avoid quantizing and
     * holding candidates they never draw. Switching to a bound-set
     * precision outside @p cache_set still works, on the uncached
     * re-quantization path.
     */
    RpsEngine(Network &net, PrecisionSet cache_set);

    ~RpsEngine();

    RpsEngine(const RpsEngine &) = delete;
    RpsEngine &operator=(const RpsEngine &) = delete;

    /** The cached candidate set. */
    const PrecisionSet &set() const { return cacheSet_; }

    /** Number of weight-quantizing layers under cache. */
    size_t numQuantLayers() const { return layers_.size(); }

    /** Total bytes held by the cached tensors. */
    size_t cacheBytes() const;

    /**
     * Re-quantize every cache entry from the current master weights
     * (parallel across layers x precisions). Installed pointers stay
     * valid. Call after weight updates.
     */
    void refresh();

    /**
     * Switch the active precision: install the cached entries for
     * @p bits (or clear them for 0 = full precision) and propagate
     * the quant state through the network. O(#layers). A bound-set
     * precision outside the cached set switches uncached.
     */
    void setPrecision(int bits);

    /** The network's currently active precision (0 = full). */
    int activePrecision() const { return net_.activePrecision(); }

    /** Switch to @p bits and run an inference forward pass. */
    Tensor forwardAt(int bits, const Tensor &x);

    /** Switch to @p bits and return per-row argmax predictions. */
    std::vector<int> predictAt(int bits, const Tensor &x);

    /** Draw a candidate precision uniformly (Alg. 1 line 16). */
    int samplePrecision(Rng &rng) const { return set().sample(rng); }

    /** Random-precision inference: sample a candidate, switch, run.
     * The drawn precision is reported through @p bits_out. */
    Tensor forwardRandom(const Tensor &x, Rng &rng, int *bits_out = nullptr);

    /**
     * Clear the installed cache pointers from all layers, returning
     * them to the uncached re-quantization path. The network keeps
     * its active precision. The cache itself is retained:
     * setPrecision re-installs it.
     */
    void detach();

  private:
    Network &net_;
    PrecisionSet cacheSet_;
    std::vector<WeightQuantizedLayer *> layers_;
    /** cache_[layer][precision index in cacheSet_]. */
    std::vector<std::vector<QuantResult>> cache_;
};

} // namespace twoinone

#endif // TWOINONE_QUANT_RPS_ENGINE_HH
