/**
 * @file
 * RpsEngine: the precision-switchable inference engine behind RPS
 * serving (paper Alg. 1, RPS inference).
 *
 * The cache is int-code-first: for every (weight layer, candidate
 * precision) pair the engine stores the canonical QuantTensor —
 * integer grid codes + scale — plus the STE mask, built in one
 * quantization pass over the masters (parallel across layers x
 * precisions on the global thread pool). The float fake-quant view
 * that the float forward consumes is *materialized lazily* from the
 * codes, on the first switch to that precision: value[i] =
 * float(code[i]) * scale, which is bit-identical to what
 * fakeQuantSymmetric would produce, so the cached float forward is
 * bit-identical to the uncached re-quantizing path. The same codes
 * feed the integer forward (Network::forwardQuantized) and the
 * bit-serial datapath simulator (accel/array_sim) directly — one
 * switch installs both representations with zero re-quantization.
 *
 * A precision switch is O(#layers): pointer installs of the float
 * entry and the codes into each layer. Entries live in stable
 * storage; refresh() rewrites them in place, so installed pointers
 * remain valid across refreshes.
 *
 * Staleness is tracked per (layer, precision) cell: every cell
 * remembers the master-weight version (Parameter::version) it was
 * quantized from, and setPrecision() re-quantizes exactly the cells
 * it is about to install whose version fell behind — so a training
 * step pays for the installed precision column per dirty layer
 * instead of all |set| of them. refreshDirty() is the per-step hook
 * the trainer calls after each optimizer step: it notes which layers
 * moved (returning how many were newly dirty) and brings the
 * *currently installed* column current — forwards may consume it
 * before any switch (Free training replays several steps per draw) —
 * while every other column rebuilds lazily at its next install.
 *
 * The engine caches *weights only*; activations are quantized per
 * forward — dynamically by default, or against calibrated static
 * scales (quant/calibration.hh), which makes the cached forward fully
 * quantization-free. Master weights must not change while caches are
 * installed — call refresh()/refreshDirty() after any training step
 * before inferring again. Layers that ran a cached forward keep a
 * pointer into the entry for their backward STE mask, so keep the
 * engine alive until the backward passes that depend on a cached
 * forward have run.
 */

#ifndef TWOINONE_QUANT_RPS_ENGINE_HH
#define TWOINONE_QUANT_RPS_ENGINE_HH

#include <atomic>
#include <cstddef>
#include <functional>
#include <vector>

#include "nn/network.hh"
#include "quant/quant_tensor.hh"
#include "tensor/gemm.hh"

namespace twoinone {

/**
 * Byte-budget policy for the engine's weight cache. With a budget,
 * the cache behaves as an LRU over (layer, precision) cells: after
 * each install/import the least-recently-used evictable cells are
 * dropped until cacheBytes() <= budgetBytes. The currently installed
 * precision column and any pinned precisions are never evicted, so a
 * budget can at most strip the cache down to installed + pinned —
 * forwards stay bit-identical at every candidate, because an evicted
 * cell transparently rehydrates (from a streaming artifact) or
 * re-quantizes from the master weights on its next install, both of
 * which reproduce the evicted codes exactly.
 */
struct EngineCacheConfig
{
    /** Cache byte ceiling (0 = unlimited; the pre-budget behavior). */
    size_t budgetBytes = 0;
    /** Precisions whose cells are never evicted (must be members of
     * the cached set) — e.g. the serving fleet's hottest widths. */
    std::vector<int> pinnedBits;
};

/**
 * Per-precision quantized-weight cache + switch/forward façade over a
 * Network. Non-copyable; detaches its caches on destruction.
 */
class RpsEngine
{
  public:
    /**
     * Build the cache for @p net's full bound PrecisionSet (which
     * must be non-empty); the network's active precision is left
     * untouched.
     */
    explicit RpsEngine(Network &net);

    /**
     * Build the cache for @p cache_set only — a non-empty subset of
     * the network's bound set. Evaluations that sample from a
     * restricted set (e.g. Fig. 11 variants) avoid quantizing and
     * holding candidates they never draw. Switching to a bound-set
     * precision outside @p cache_set still works, on the uncached
     * re-quantization path.
     */
    RpsEngine(Network &net, PrecisionSet cache_set);

    /** Tag selecting the deferred-build constructor. */
    struct DeferBuild
    {
    };

    /**
     * Construct with an *empty* cache: no quantization pass runs.
     * Cells are expected to arrive through importCell() (checkpoint
     * warm start); any cell never imported rebuilds lazily on its
     * first install, so a partial import degrades gracefully to the
     * ordinary lazy path.
     */
    RpsEngine(Network &net, PrecisionSet cache_set, DeferBuild);

    ~RpsEngine();

    RpsEngine(const RpsEngine &) = delete;
    RpsEngine &operator=(const RpsEngine &) = delete;

    /** The cached candidate set. */
    const PrecisionSet &set() const { return cacheSet_; }

    /** Number of weight-quantizing layers under cache. */
    size_t numQuantLayers() const { return layers_.size(); }

    /** Total bytes held by the cache: int codes + STE masks + any
     * materialized float views + any tile-packed kernel buffers. */
    size_t cacheBytes() const;

    /**
     * Install a byte-budget policy (see EngineCacheConfig). Applies
     * immediately: over-budget cells are evicted LRU-first before the
     * call returns, and every subsequent install/import re-enforces
     * the ceiling. Pinned precisions must be members of the cached
     * set. A default-constructed config restores unlimited caching.
     */
    void setCacheConfig(EngineCacheConfig cfg);

    /** The installed budget policy. */
    const EngineCacheConfig &cacheConfig() const { return cacheCfg_; }

    /** One lazily hydrated cache cell, produced by a CellHydrator:
     * the canonical codes + STE mask (and optionally the tile pack),
     * exactly as importCell would receive them. */
    struct HydratedCell
    {
        QuantTensor codes;
        Tensor steMask;
        gemm::PackedIntWeights packed;
        bool hasPack = false;
    };

    /**
     * Source of truth for absent cells, consulted before the engine
     * falls back to re-quantizing from the master weights: the
     * streaming checkpoint loader installs one that reads the cell's
     * section from disk. Returns false on any failure (missing
     * section, corruption) — the engine then rebuilds the cell, which
     * is bit-identical to the persisted codes. Called concurrently
     * from the install pass, so it must be thread-safe; it is only
     * consulted while a layer's master weights still match their
     * state at hydrator installation (training invalidates the
     * artifact's cells, so moved layers rebuild instead).
     */
    using CellHydrator =
        std::function<bool(size_t layer, int bits, HydratedCell &out)>;

    /** Install @p hydrator (empty = none), snapshotting the current
     * master-weight versions it is valid against. */
    void setCellHydrator(CellHydrator hydrator);

    /** Whether the (layer, bits) cell is currently resident (built
     * and not evicted) — eviction-test observability. */
    bool cellResident(size_t layer, int bits) const;

    /** Cells dropped by the byte-budget policy since construction. */
    uint64_t cacheEvictions() const;

    /** Cells filled from the hydrator (streaming artifact) instead of
     * a quantization pass since construction. */
    uint64_t cellHydrations() const;

    /**
     * Re-quantize every cache entry from the current master weights
     * (parallel across layers x precisions). Installed pointers stay
     * valid; materialized float views are dropped and rebuilt on the
     * next switch. Call after weight updates.
     */
    void refresh();

    /**
     * Note the layers whose master-weight version
     * (Parameter::version) moved since they were last noted, and
     * re-quantize the currently installed column's stale cells so the
     * caches in active use are never stale — the per-step hook for
     * cached adversarial training. All other precision columns
     * rebuild lazily when setPrecision() next installs them, cutting
     * per-step quantization work from |set| columns to the one(s)
     * actually consumed. Layers mutated without a version bump are
     * NOT picked up; use refresh() for out-of-band weight surgery.
     *
     * @return The number of layers newly observed dirty (0 on a
     *         repeat call with no intervening update).
     */
    size_t refreshDirty();

    /**
     * Switch the active precision: install the cached float entries
     * and integer codes for @p bits (or clear them for 0 = full
     * precision) and propagate the quant state through the network.
     * O(#layers) plus, per installed cell, a re-quantization when its
     * master weights moved since it was built (the lazy column
     * rebuild) or a code-to-float materialization on its first use.
     * A bound-set precision outside the cached set switches uncached.
     */
    void setPrecision(int bits);

    /** The network's currently active precision (0 = full). */
    int activePrecision() const { return net_.activePrecision(); }

    /** The network this engine's cache is built on. */
    Network &network() const { return net_; }

    /** Switch to @p bits and run an inference forward pass. */
    Tensor forwardAt(int bits, const Tensor &x);

    /** Switch to @p bits and run the integer-datapath forward. */
    Tensor forwardQuantizedAt(int bits, const Tensor &x);

    /** Switch to @p bits and return per-row argmax predictions. */
    std::vector<int> predictAt(int bits, const Tensor &x);

    /** predictAt on the integer datapath. */
    std::vector<int> predictQuantizedAt(int bits, const Tensor &x);

    /** Draw a candidate precision uniformly (Alg. 1 line 16). */
    int samplePrecision(Rng &rng) const { return set().sample(rng); }

    /** Random-precision inference: sample a candidate, switch, run.
     * The drawn precision is reported through @p bits_out. */
    Tensor forwardRandom(const Tensor &x, Rng &rng, int *bits_out = nullptr);

    /**
     * Clear the installed cache pointers from all layers, returning
     * them to the uncached re-quantization path. The network keeps
     * its active precision. The cache itself is retained:
     * setPrecision re-installs it.
     */
    void detach();

    /** The cached integer codes of layer @p layer at @p bits
     * (test/simulator access; panics when not cached). Rebuilds the
     * cell first when the master weights moved since it was built. */
    const QuantTensor &codesFor(size_t layer, int bits);

    /** The cached STE mask of layer @p layer at @p bits (checkpoint
     * writer access; same lazy-rebuild contract as codesFor). */
    const Tensor &steMaskFor(size_t layer, int bits);

    /**
     * Install one externally restored cache cell (checkpoint warm
     * start): the canonical codes plus the STE mask, both quantized
     * from the layer's *current* master weights by the producer. The
     * cell is marked built at the layer's current weight version; the
     * float view stays lazy (materialized on first install, as after
     * an ordinary build). Shape/precision must match the layer and
     * the cached set — the checkpoint loader validates before calling.
     */
    void importCell(size_t layer, size_t prec, QuantTensor codes,
                    Tensor ste_mask);

    /**
     * importCell() variant that also installs a pre-built tile pack
     * (checkpoint pack persistence): the cell arrives packed-ready,
     * so the first precision switch skips the pack pass entirely —
     * packBuilds() stays 0 on a fully pack-warm start. @p packed must
     * have been produced by gemm::packWeights over exactly @p codes;
     * geometry mismatches panic.
     */
    void importCell(size_t layer, size_t prec, QuantTensor codes,
                    Tensor ste_mask, gemm::PackedIntWeights packed);

    /** The tile-packed kernel weights of layer @p layer at @p bits
     * (checkpoint writer access; brings a stale cell current and
     * packs it on first demand). */
    const gemm::PackedIntWeights &packedFor(size_t layer, int bits);

    /** Cells re-quantized since construction (lazy-rebuild
     * accounting: a full refresh counts #layers x |set|, an install
     * of a stale column counts one per dirty layer). */
    uint64_t columnRebuilds() const;

    /** Tile packs built (or rebuilt) since construction. A warm start
     * that imported packs serves every cached precision without one
     * (the pack-persist counterpart of columnRebuilds()). */
    uint64_t packBuilds() const;

    /** @name Cache accounting
     * Quantized-weight lookups across all cached layers since the
     * last reset: hits used an installed entry, misses re-quantized
     * the masters (e.g. EPGD switching precisions behind the
     * engine's back). */
    /** @{ */
    uint64_t cacheHits() const;
    uint64_t cacheMisses() const;
    void resetCacheStats();
    /** @} */

  private:
    /** One (layer, precision) cache cell: canonical codes plus the
     * lazily materialized float fake-quant view and the lazily built
     * tile-packed kernel weights, stamped with the master-weight
     * version it was quantized from. */
    struct CacheEntry
    {
        QuantTensor codes;
        QuantResult floats; ///< steMask eager, values lazy
        /** Tile-ordered codes for the packed integer kernels
         * (gemm::igemmPackedTransB*), built on the cell's first
         * install and then kept current by rebuilds — a precision
         * switch installs ready-to-run kernel weights, and the
         * per-forward repack disappears from the serving path. */
        gemm::PackedIntWeights packed;
        bool packedReady = false;
        bool floatsReady = false;
        bool built = false;
        uint64_t builtVersion = 0;
        /** Logical clock of the cell's last install/access — the LRU
         * key the byte-budget eviction orders by. */
        uint64_t lastUse = 0;
    };

    Network &net_;
    PrecisionSet cacheSet_;
    std::vector<WeightQuantizedLayer *> layers_;
    /** cache_[layer][precision index in cacheSet_]. */
    std::vector<std::vector<CacheEntry>> cache_;
    /** Master-weight version refreshDirty() last noted per layer. */
    std::vector<uint64_t> notedVersion_;
    /** Precision column currently installed into the layers (-1 when
     * detached / uncached) — the one column refreshDirty() keeps
     * eagerly current. */
    int installedIdx_ = -1;
    /** Cells quantized so far (see columnRebuilds()). */
    std::atomic<uint64_t> columnRebuilds_{0};
    /** Tile packs built so far (see packBuilds()). */
    std::atomic<uint64_t> packBuilds_{0};
    /** Byte-budget policy (budgetBytes 0 = unlimited). */
    EngineCacheConfig cacheCfg_;
    /** pinnedIdx_[prec]: that cached precision is never evicted. */
    std::vector<bool> pinnedIdx_;
    /** Lazy cell source (empty = rebuild-only), and the per-layer
     * master-weight versions it was installed against. */
    CellHydrator hydrator_;
    std::vector<uint64_t> hydratorVersion_;
    /** LRU clock; advanced only from serial sections (install loop,
     * accessors) — never inside a parallelFor body. */
    uint64_t useTick_ = 0;
    /** Cells evicted so far (see cacheEvictions()). */
    std::atomic<uint64_t> cacheEvictions_{0};
    /** Cells hydrated so far (see cellHydrations()). */
    std::atomic<uint64_t> cellHydrations_{0};

    /** Whether the cell's codes predate the layer's current master
     * weights. */
    bool cellStale(size_t layer, size_t prec) const;

    /** Re-quantize one cell from the current masters, fusing the
     * float-view materialization when the view is (or must become)
     * live; a live tile pack is repacked from the fresh codes so
     * installed pack pointers stay current. */
    void rebuildCell(size_t layer, size_t prec, bool want_floats);

    /** (Re)build a cell's tile-packed kernel weights from its codes. */
    void packEntry(CacheEntry &e);

    /** Bytes one cell currently holds (the cacheBytes() summand). */
    static size_t cellBytes(const CacheEntry &e);

    /** Shared importCell body (no budget enforcement — the public
     * overloads re-enforce it once the cell is fully landed). */
    void importCellImpl(size_t layer, size_t prec, QuantTensor codes,
                        Tensor ste_mask);

    /** Try to fill an absent cell from the hydrator. Thread-safe for
     * disjoint cells (each parallelFor worker owns its cell). */
    bool tryHydrate(size_t layer, size_t prec);

    /** Make the cell current: hydrate when absent and the hydrator
     * is still valid for the layer, else re-quantize when stale. */
    void ensureCell(size_t layer, size_t prec, bool want_floats);

    /** Drop LRU evictable cells until cacheBytes() fits the budget
     * (no-op without one). Serial sections only. */
    void evictToBudget();

    /** Rebuild all cached precisions of the given layers (parallel
     * over layers x precisions; float views of used precisions are
     * rebuilt fused, never-used views stay lazy). */
    void rebuildLayers(const std::vector<size_t> &which);
};

} // namespace twoinone

#endif // TWOINONE_QUANT_RPS_ENGINE_HH
