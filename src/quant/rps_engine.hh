/**
 * @file
 * RpsEngine: the precision-switchable inference engine behind RPS
 * serving (paper Alg. 1, RPS inference).
 *
 * The cache is int-code-first: for every (weight layer, candidate
 * precision) pair the engine stores the canonical QuantTensor —
 * integer grid codes + scale — plus the STE mask, built in one
 * quantization pass over the masters (parallel across layers x
 * precisions on the global thread pool). The float fake-quant view
 * that the float forward consumes is *materialized lazily* from the
 * codes, on the first switch to that precision: value[i] =
 * float(code[i]) * scale, which is bit-identical to what
 * fakeQuantSymmetric would produce, so the cached float forward is
 * bit-identical to the uncached re-quantizing path. The same codes
 * feed the integer forward (Network::forwardQuantized) and the
 * bit-serial datapath simulator (accel/array_sim) directly — one
 * switch installs both representations with zero re-quantization.
 *
 * A precision switch is O(#layers): pointer installs of the float
 * entry and the codes into each layer. Entries live in stable
 * storage; refresh() rewrites them in place, so installed pointers
 * remain valid across refreshes. refreshDirty() re-quantizes only
 * layers whose master-weight version advanced since their entries
 * were built (Parameter::version, bumped by the optimizer) — the
 * per-step refresh the trainer hook uses.
 *
 * The engine caches *weights only*; activations are quantized per
 * forward — dynamically by default, or against calibrated static
 * scales (quant/calibration.hh), which makes the cached forward fully
 * quantization-free. Master weights must not change while caches are
 * installed — call refresh()/refreshDirty() after any training step
 * before inferring again. Layers that ran a cached forward keep a
 * pointer into the entry for their backward STE mask, so keep the
 * engine alive until the backward passes that depend on a cached
 * forward have run.
 */

#ifndef TWOINONE_QUANT_RPS_ENGINE_HH
#define TWOINONE_QUANT_RPS_ENGINE_HH

#include <vector>

#include "nn/network.hh"
#include "quant/quant_tensor.hh"

namespace twoinone {

/**
 * Per-precision quantized-weight cache + switch/forward façade over a
 * Network. Non-copyable; detaches its caches on destruction.
 */
class RpsEngine
{
  public:
    /**
     * Build the cache for @p net's full bound PrecisionSet (which
     * must be non-empty); the network's active precision is left
     * untouched.
     */
    explicit RpsEngine(Network &net);

    /**
     * Build the cache for @p cache_set only — a non-empty subset of
     * the network's bound set. Evaluations that sample from a
     * restricted set (e.g. Fig. 11 variants) avoid quantizing and
     * holding candidates they never draw. Switching to a bound-set
     * precision outside @p cache_set still works, on the uncached
     * re-quantization path.
     */
    RpsEngine(Network &net, PrecisionSet cache_set);

    ~RpsEngine();

    RpsEngine(const RpsEngine &) = delete;
    RpsEngine &operator=(const RpsEngine &) = delete;

    /** The cached candidate set. */
    const PrecisionSet &set() const { return cacheSet_; }

    /** Number of weight-quantizing layers under cache. */
    size_t numQuantLayers() const { return layers_.size(); }

    /** Total bytes held by the cache: int codes + STE masks + any
     * materialized float views. */
    size_t cacheBytes() const;

    /**
     * Re-quantize every cache entry from the current master weights
     * (parallel across layers x precisions). Installed pointers stay
     * valid; materialized float views are dropped and rebuilt on the
     * next switch. Call after weight updates.
     */
    void refresh();

    /**
     * Re-quantize only the layers whose master-weight version
     * (Parameter::version) moved since their entries were built — the
     * per-step hook for cached adversarial training. Layers mutated
     * without a version bump are NOT picked up; use refresh() for
     * out-of-band weight surgery.
     *
     * @return The number of layers that were dirty and re-quantized.
     */
    size_t refreshDirty();

    /**
     * Switch the active precision: install the cached float entries
     * and integer codes for @p bits (or clear them for 0 = full
     * precision) and propagate the quant state through the network.
     * O(#layers) plus, on first use of a precision since the last
     * refresh, one code-to-float materialization pass. A bound-set
     * precision outside the cached set switches uncached.
     */
    void setPrecision(int bits);

    /** The network's currently active precision (0 = full). */
    int activePrecision() const { return net_.activePrecision(); }

    /** Switch to @p bits and run an inference forward pass. */
    Tensor forwardAt(int bits, const Tensor &x);

    /** Switch to @p bits and run the integer-datapath forward. */
    Tensor forwardQuantizedAt(int bits, const Tensor &x);

    /** Switch to @p bits and return per-row argmax predictions. */
    std::vector<int> predictAt(int bits, const Tensor &x);

    /** predictAt on the integer datapath. */
    std::vector<int> predictQuantizedAt(int bits, const Tensor &x);

    /** Draw a candidate precision uniformly (Alg. 1 line 16). */
    int samplePrecision(Rng &rng) const { return set().sample(rng); }

    /** Random-precision inference: sample a candidate, switch, run.
     * The drawn precision is reported through @p bits_out. */
    Tensor forwardRandom(const Tensor &x, Rng &rng, int *bits_out = nullptr);

    /**
     * Clear the installed cache pointers from all layers, returning
     * them to the uncached re-quantization path. The network keeps
     * its active precision. The cache itself is retained:
     * setPrecision re-installs it.
     */
    void detach();

    /** The cached integer codes of layer @p layer at @p bits
     * (test/simulator access; panics when not cached). */
    const QuantTensor &codesFor(size_t layer, int bits) const;

    /** @name Cache accounting
     * Quantized-weight lookups across all cached layers since the
     * last reset: hits used an installed entry, misses re-quantized
     * the masters (e.g. EPGD switching precisions behind the
     * engine's back). */
    /** @{ */
    uint64_t cacheHits() const;
    uint64_t cacheMisses() const;
    void resetCacheStats();
    /** @} */

  private:
    /** One (layer, precision) cache cell: canonical codes plus the
     * lazily materialized float fake-quant view. */
    struct CacheEntry
    {
        QuantTensor codes;
        QuantResult floats; ///< steMask eager, values lazy
        bool floatsReady = false;
    };

    Network &net_;
    PrecisionSet cacheSet_;
    std::vector<WeightQuantizedLayer *> layers_;
    /** cache_[layer][precision index in cacheSet_]. */
    std::vector<std::vector<CacheEntry>> cache_;
    /** Master-weight version each layer's entries were built from. */
    std::vector<uint64_t> builtVersion_;

    /** Rebuild all cached precisions of the given layers (parallel
     * over layers x precisions; float views of used precisions are
     * rebuilt fused, never-used views stay lazy). */
    void rebuildLayers(const std::vector<size_t> &which);
};

} // namespace twoinone

#endif // TWOINONE_QUANT_RPS_ENGINE_HH
