/**
 * @file
 * Implementation of PrecisionSet.
 */

#include "quant/precision.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"

namespace twoinone {

PrecisionSet::PrecisionSet(std::vector<int> bits) : bits_(std::move(bits))
{
    TWOINONE_ASSERT(!bits_.empty(), "empty precision set");
    TWOINONE_ASSERT(std::is_sorted(bits_.begin(), bits_.end()),
                    "precision set must be sorted");
    for (size_t i = 0; i < bits_.size(); ++i) {
        TWOINONE_ASSERT(bits_[i] >= 1 && bits_[i] <= 16,
                        "precision out of [1,16]: ", bits_[i]);
        if (i > 0) {
            TWOINONE_ASSERT(bits_[i] != bits_[i - 1],
                            "duplicate precision ", bits_[i]);
        }
    }
}

PrecisionSet
PrecisionSet::rps4to16()
{
    return PrecisionSet({4, 5, 6, 8, 12, 16});
}

PrecisionSet
PrecisionSet::rps4to12()
{
    return PrecisionSet({4, 5, 6, 8, 12});
}

PrecisionSet
PrecisionSet::rps4to8()
{
    return PrecisionSet({4, 5, 6, 8});
}

PrecisionSet
PrecisionSet::static4()
{
    return PrecisionSet({4});
}

PrecisionSet
PrecisionSet::range(int lo, int hi)
{
    TWOINONE_ASSERT(lo >= 1 && hi >= lo, "bad precision range [", lo, ",",
                    hi, "]");
    std::vector<int> b;
    for (int q = lo; q <= hi; ++q)
        b.push_back(q);
    return PrecisionSet(std::move(b));
}

bool
PrecisionSet::contains(int q) const
{
    return std::find(bits_.begin(), bits_.end(), q) != bits_.end();
}

int
PrecisionSet::indexOf(int q) const
{
    auto it = std::find(bits_.begin(), bits_.end(), q);
    TWOINONE_ASSERT(it != bits_.end(), "precision ", q, " not in set ",
                    name());
    return static_cast<int>(it - bits_.begin());
}

int
PrecisionSet::sample(Rng &rng) const
{
    TWOINONE_ASSERT(!bits_.empty(), "sampling from empty precision set");
    return rng.pick(bits_);
}

int
PrecisionSet::minBits() const
{
    TWOINONE_ASSERT(!bits_.empty(), "minBits of empty set");
    return bits_.front();
}

int
PrecisionSet::maxBits() const
{
    TWOINONE_ASSERT(!bits_.empty(), "maxBits of empty set");
    return bits_.back();
}

std::string
PrecisionSet::name() const
{
    std::ostringstream oss;
    oss << "{";
    for (size_t i = 0; i < bits_.size(); ++i) {
        if (i)
            oss << ",";
        oss << bits_[i];
    }
    oss << "}";
    return oss.str();
}

} // namespace twoinone
