/**
 * @file
 * QuantTensor: the canonical quantized-tensor representation — integer
 * codes on a uniform grid plus the scale that maps them back to reals.
 *
 * The float "fake-quantized" values the nn library computes are a
 * *view* of this representation: value[i] == float(code[i]) * scale,
 * exactly (codes are small integers, exactly representable in float,
 * and the product is the same single rounding fakeQuant* performs).
 * RpsEngine therefore caches QuantTensors as the source of truth and
 * materializes the float view lazily; the bit-serial datapath
 * simulator (accel/array_sim) consumes the codes directly, with no
 * float-to-int re-pass anywhere.
 *
 * Two grids, matching LinearQuantizer:
 *  - symmetric signed (weights): codes in [-qmax, qmax],
 *    qmax = 2^(bits-1) - 1, scale = max|x| / qmax;
 *  - affine unsigned (post-ReLU activations): codes in [0, qmax],
 *    qmax = 2^bits - 1, scale = max / qmax — with the max either
 *    observed from the tensor (dynamic) or supplied by a calibration
 *    pass (static scale).
 */

#ifndef TWOINONE_QUANT_QUANT_TENSOR_HH
#define TWOINONE_QUANT_QUANT_TENSOR_HH

#include <cstdint>
#include <vector>

#include "tensor/tensor.hh"

namespace twoinone {

/**
 * Integer codes + scale + precision: the canonical quantized tensor.
 */
struct QuantTensor
{
    /** Row-major shape (mirrors the source Tensor's). */
    std::vector<int> shape;
    /** Integer grid codes. Stored as int32 so post-quantization
     * integer transforms (e.g. average-pool partial sums) fit. */
    std::vector<int32_t> codes;
    /** Dequantization scale: real value = code * scale. */
    float scale = 0.0f;
    /** Grid precision in bits (0 = empty/unquantized). */
    int bits = 0;
    /** Signed symmetric grid (weights) vs unsigned (activations). */
    bool isSigned = true;

    size_t size() const { return codes.size(); }
    bool empty() const { return codes.empty(); }
    /** Bytes held by the code storage. */
    size_t bytes() const { return codes.size() * sizeof(int32_t); }

    /**
     * Quantize onto the symmetric signed grid (weights), scale from
     * the tensor's own max|x|. Codes reproduce
     * LinearQuantizer::fakeQuantSymmetric exactly: dequantize() is
     * bit-identical to its values, @p ste_mask_out (when non-null)
     * receives the identical STE mask, and @p values_out (when
     * non-null) receives the dequantized grid values fused into the
     * same pass (what a separate dequantize() would produce).
     */
    static QuantTensor quantizeSymmetric(const Tensor &x, int bits,
                                         Tensor *ste_mask_out = nullptr,
                                         Tensor *values_out = nullptr);

    /** quantizeSymmetric into a caller-owned QuantTensor, reusing its
     * code storage — the allocation-free form the RpsEngine cache
     * rebuilds run on. The allocating overload wraps it. */
    static void quantizeSymmetricInto(const Tensor &x, int bits,
                                      QuantTensor &out,
                                      Tensor *ste_mask_out = nullptr,
                                      Tensor *values_out = nullptr);

    /**
     * Quantize onto the unsigned grid (activations) with an explicit
     * range maximum @p max_v — the static-scale calibrated form. With
     * max_v == ops::maxVal(x) this reproduces
     * LinearQuantizer::fakeQuantUnsigned bit-exactly.
     */
    static QuantTensor quantizeUnsigned(const Tensor &x, int bits,
                                        float max_v,
                                        Tensor *ste_mask_out = nullptr);

    /** quantizeUnsigned into a caller-owned QuantTensor, reusing its
     * code storage — the allocation-free form the serving plan's
     * ActQuant steps run on. The allocating overload wraps it. */
    static void quantizeUnsignedInto(const Tensor &x, int bits,
                                     float max_v, QuantTensor &out,
                                     Tensor *ste_mask_out = nullptr);

    /** Materialize the float view: out[i] = float(codes[i]) * scale. */
    Tensor dequantize() const;

    /** Materialize into an existing tensor (reshaped as needed). */
    void dequantizeInto(Tensor &out) const;

    /** Largest |code| representable on this grid. */
    int qmax() const;
};

} // namespace twoinone

#endif // TWOINONE_QUANT_QUANT_TENSOR_HH
