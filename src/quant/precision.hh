/**
 * @file
 * Precision sets and the random precision sampler at the heart of RPS.
 *
 * A PrecisionSet is the candidate set Set_Q of Alg. 1: the precisions a
 * model may be quantized to during RPS training and inference. The
 * paper's default is 4~16-bit; the instant-trade-off experiments
 * (Fig. 11) also use 4~12, 4~8 and static 4-bit sets.
 */

#ifndef TWOINONE_QUANT_PRECISION_HH
#define TWOINONE_QUANT_PRECISION_HH

#include <string>
#include <vector>

#include "common/rng.hh"

namespace twoinone {

/**
 * An ordered set of candidate bit-widths for weights/activations.
 */
class PrecisionSet
{
  public:
    /** Empty set (full precision only). */
    PrecisionSet() = default;

    /** Construct from explicit candidate bit-widths (must be sorted,
     * unique, each in [1, 16]). */
    explicit PrecisionSet(std::vector<int> bits);

    /** The paper's default RPS set: {4,5,6,8,12,16}. */
    static PrecisionSet rps4to16();

    /** Fig. 11 variants. */
    static PrecisionSet rps4to12();
    static PrecisionSet rps4to8();
    static PrecisionSet static4();

    /** Contiguous range [lo, hi] (each integer precision). */
    static PrecisionSet range(int lo, int hi);

    /** Candidate bit-widths. */
    const std::vector<int> &bits() const { return bits_; }

    /** Number of candidates. */
    size_t size() const { return bits_.size(); }

    bool empty() const { return bits_.empty(); }

    /** Whether q is a member. */
    bool contains(int q) const;

    /** Index of q within the set (panics when absent). */
    int indexOf(int q) const;

    /** Draw a candidate uniformly at random (Alg. 1 line 5 / 16). */
    int sample(Rng &rng) const;

    /** Lowest / highest candidate. */
    int minBits() const;
    int maxBits() const;

    /** Human-readable name, e.g. "{4,5,6,8,12,16}". */
    std::string name() const;

  private:
    std::vector<int> bits_;
};

} // namespace twoinone

#endif // TWOINONE_QUANT_PRECISION_HH
