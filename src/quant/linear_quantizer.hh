/**
 * @file
 * Linear (uniform) quantizer in the style of Jacob et al. 2018, the
 * quantizer the paper uses for both weights and activations ([34]).
 *
 * Two flavours:
 *  - symmetric signed quantization (weights): scale = max|x| / qmax,
 *    grid { -qmax..qmax } with qmax = 2^(bits-1) - 1;
 *  - affine unsigned quantization (post-ReLU activations):
 *    scale = max(x) / (2^bits - 1), grid { 0..2^bits-1 }.
 *
 * fakeQuant* return the dequantized ("fake quantized") values plus the
 * straight-through-estimator pass mask: gradients flow where the input
 * fell inside the representable range and are cut where it clipped.
 */

#ifndef TWOINONE_QUANT_LINEAR_QUANTIZER_HH
#define TWOINONE_QUANT_LINEAR_QUANTIZER_HH

#include <cstdint>
#include <vector>

#include "tensor/tensor.hh"

namespace twoinone {

/**
 * Result of a fake-quantization pass.
 */
struct QuantResult
{
    /** Dequantized values on the quantization grid. */
    Tensor values;
    /** STE mask: 1 where the gradient passes, 0 where input clipped. */
    Tensor steMask;
    /** The scale used (0 when the input was identically zero). */
    float scale = 0.0f;
    /** The zero point (always 0 for symmetric mode). */
    float zeroPoint = 0.0f;
    /** The precision this result was quantized at (0 = full). */
    int bits = 0;
};

/**
 * Stateless uniform quantizer.
 *
 * All methods are static; the dynamic range is taken from the tensor
 * itself (per-tensor dynamic quantization), matching the in-situ
 * precision switching of RPS where no per-precision calibration pass
 * is available.
 *
 * The max reduction and the grid pass run on ThreadPool::parallelFor
 * above a size threshold. Both are exact under any chunking (float
 * max is order-independent; the grid pass writes disjoint elements),
 * so results are bit-identical for every TWOINONE_THREADS setting.
 * TWOINONE_BACKEND=naive keeps both passes serial, mirroring the gemm
 * reference path.
 */
class LinearQuantizer
{
  public:
    /** Number of positive levels of a signed symmetric grid. */
    static int signedQmax(int bits);

    /** Number of levels minus one of an unsigned grid. */
    static int unsignedQmax(int bits);

    /**
     * Symmetric signed fake quantization (weights).
     *
     * @param x Input tensor.
     * @param bits Precision; bits <= 0 returns x unchanged
     *             (full precision) with an all-ones mask.
     */
    static QuantResult fakeQuantSymmetric(const Tensor &x, int bits);

    /**
     * Affine unsigned fake quantization (activations, assumed >= 0).
     * Negative inputs clip to zero (and their gradient is cut).
     */
    static QuantResult fakeQuantUnsigned(const Tensor &x, int bits);

    /**
     * Affine unsigned fake quantization with an explicit range
     * maximum — the static-scale form used after activation
     * calibration. Bit-identical to fakeQuantUnsigned when
     * @p max_v == ops::maxVal(x) (both run the same grid pass);
     * values above @p max_v clip to the top of the grid.
     */
    static QuantResult fakeQuantUnsignedStatic(const Tensor &x, int bits,
                                               float max_v);

    /**
     * Values-only form of fakeQuantUnsignedStatic into a caller-owned
     * buffer (no STE mask — inference consumers don't read one): the
     * allocation-free pass the serving plan's ActQuant float step
     * runs on. Shares the grid pass with the masked form, so the
     * values are bit-identical.
     */
    static void fakeQuantUnsignedStaticValuesInto(const Tensor &x,
                                                  int bits, float max_v,
                                                  Tensor &values_out);

    /**
     * Integer codes of the symmetric grid, for feeding the bit-true
     * accelerator datapath. Values lie in [-qmax, qmax].
     */
    static std::vector<int32_t> quantizeToIntSymmetric(const Tensor &x,
                                                       int bits,
                                                       float *scale_out);
};

} // namespace twoinone

#endif // TWOINONE_QUANT_LINEAR_QUANTIZER_HH
