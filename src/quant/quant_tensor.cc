/**
 * @file
 * QuantTensor implementation.
 *
 * The quantization passes mirror LinearQuantizer's exactly (same
 * nearbyint grid snap, same clamp, same mask rule) so the code form
 * and the float fake-quant form can never diverge; the grid passes run
 * through the same backend-gated chunking (ops::gatedParallelFor) and
 * are bit-identical for any thread count.
 */

#include "quant/quant_tensor.hh"

#include <algorithm>
#include <cmath>

#include "quant/linear_quantizer.hh"
#include "tensor/ops.hh"

namespace twoinone {

namespace {

// Matches the element-wise grain in tensor/ops.cc and the quantizer.
constexpr int64_t kQuantGrain = 1 << 15;

} // namespace

int
QuantTensor::qmax() const
{
    if (bits <= 0)
        return 0;
    return isSigned ? LinearQuantizer::signedQmax(bits)
                    : LinearQuantizer::unsignedQmax(bits);
}

QuantTensor
QuantTensor::quantizeSymmetric(const Tensor &x, int bits,
                               Tensor *ste_mask_out, Tensor *values_out)
{
    QuantTensor q;
    quantizeSymmetricInto(x, bits, q, ste_mask_out, values_out);
    return q;
}

void
QuantTensor::quantizeSymmetricInto(const Tensor &x, int bits,
                                   QuantTensor &q, Tensor *ste_mask_out,
                                   Tensor *values_out)
{
    TWOINONE_ASSERT(bits >= 1, "quantizeSymmetric bits=", bits);
    q.shape = x.shape();
    q.codes.resize(x.size());
    q.bits = bits;
    q.isSigned = true;

    if (ste_mask_out) {
        ste_mask_out->ensure(x.shape());
        ste_mask_out->fill(1.0f);
    }

    float max_abs = ops::maxAbs(x);
    if (max_abs == 0.0f) {
        q.scale = 0.0f;
        std::fill(q.codes.begin(), q.codes.end(), 0);
        if (values_out) {
            values_out->ensure(x.shape());
            values_out->fill(0.0f);
        }
        return;
    }
    int qmax = LinearQuantizer::signedQmax(bits);
    float scale = max_abs / static_cast<float>(qmax);
    q.scale = scale;

    if (values_out)
        values_out->ensure(x.shape());
    const float *in = x.data();
    int32_t *codes = q.codes.data();
    float *mask = ste_mask_out ? ste_mask_out->data() : nullptr;
    float *values = values_out ? values_out->data() : nullptr;
    ops::gatedParallelFor(
        static_cast<int64_t>(x.size()), kQuantGrain,
        [&](int64_t lo, int64_t hi) {
            for (int64_t i = lo; i < hi; ++i) {
                float g = std::nearbyint(in[i] / scale);
                if (g > qmax) {
                    g = static_cast<float>(qmax);
                    if (mask)
                        mask[i] = 0.0f;
                } else if (g < -qmax) {
                    g = static_cast<float>(-qmax);
                    if (mask)
                        mask[i] = 0.0f;
                }
                codes[i] = static_cast<int32_t>(g);
                if (values)
                    values[i] = g * scale;
            }
        });
}

QuantTensor
QuantTensor::quantizeUnsigned(const Tensor &x, int bits, float max_v,
                              Tensor *ste_mask_out)
{
    QuantTensor q;
    quantizeUnsignedInto(x, bits, max_v, q, ste_mask_out);
    return q;
}

void
QuantTensor::quantizeUnsignedInto(const Tensor &x, int bits, float max_v,
                                  QuantTensor &q, Tensor *ste_mask_out)
{
    TWOINONE_ASSERT(bits >= 1, "quantizeUnsigned bits=", bits);
    q.shape = x.shape();
    q.codes.resize(x.size());
    q.bits = bits;
    q.isSigned = false;

    const float *in = x.data();
    if (ste_mask_out) {
        ste_mask_out->ensure(x.shape());
        ste_mask_out->fill(1.0f);
    }
    if (max_v <= 0.0f) {
        q.scale = 0.0f;
        std::fill(q.codes.begin(), q.codes.end(), 0);
        if (ste_mask_out) {
            float *mask = ste_mask_out->data();
            ops::gatedParallelFor(
                static_cast<int64_t>(x.size()), kQuantGrain,
                [&](int64_t lo, int64_t hi) {
                    for (int64_t i = lo; i < hi; ++i)
                        mask[i] = (in[i] == 0.0f) ? 1.0f : 0.0f;
                });
        }
        return;
    }

    int qmax = LinearQuantizer::unsignedQmax(bits);
    float scale = max_v / static_cast<float>(qmax);
    q.scale = scale;
    int32_t *codes = q.codes.data();
    float *mask = ste_mask_out ? ste_mask_out->data() : nullptr;
    ops::gatedParallelFor(
        static_cast<int64_t>(x.size()), kQuantGrain,
        [&](int64_t lo, int64_t hi) {
            for (int64_t i = lo; i < hi; ++i) {
                float g = std::nearbyint(in[i] / scale);
                if (g < 0.0f) {
                    g = 0.0f;
                    if (mask)
                        mask[i] = 0.0f;
                } else if (g > qmax) {
                    g = static_cast<float>(qmax);
                    if (mask)
                        mask[i] = 0.0f;
                }
                codes[i] = static_cast<int32_t>(g);
            }
        });
}

Tensor
QuantTensor::dequantize() const
{
    Tensor out;
    dequantizeInto(out);
    return out;
}

void
QuantTensor::dequantizeInto(Tensor &out) const
{
    out.ensure(shape);
    float *dst = out.data();
    const int32_t *src = codes.data();
    const float s = scale;
    ops::gatedParallelFor(
        static_cast<int64_t>(codes.size()), kQuantGrain,
        [&](int64_t lo, int64_t hi) {
            for (int64_t i = lo; i < hi; ++i)
                dst[i] = static_cast<float>(src[i]) * s;
        });
}

} // namespace twoinone
