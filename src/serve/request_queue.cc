/**
 * @file
 * Sharded MPMC request queue implementation.
 */

#include "serve/request_queue.hh"

#include <limits>

namespace twoinone {
namespace serve {

RequestQueue::RequestQueue(int shards, size_t capacity)
    : capacity_(capacity < 1 ? 1 : capacity)
{
    if (shards < 1)
        shards = 1;
    shards_.reserve(static_cast<size_t>(shards));
    for (int i = 0; i < shards; ++i)
        shards_.push_back(std::make_unique<Shard>());
}

bool
RequestQueue::tryPush(AsyncRequest &r)
{
    // Reserve a slot first: the atomic size both enforces the
    // admission bound and lets producers fail fast without touching
    // any shard lock when the queue is saturated.
    size_t reserved = size_.fetch_add(1, std::memory_order_acq_rel);
    if (reserved >= capacity_) {
        size_.fetch_sub(1, std::memory_order_acq_rel);
        return false;
    }
    r.seq = seq_.fetch_add(1, std::memory_order_acq_rel);
    size_t shard = ticket_.fetch_add(1, std::memory_order_relaxed) %
                   shards_.size();
    Shard &s = *shards_[shard];
    std::lock_guard<std::mutex> lk(s.mu);
    s.q.push_back(std::move(r));
    return true;
}

bool
RequestQueue::pop(AsyncRequest &out)
{
    std::lock_guard<std::mutex> consumer(popMu_);
    // Find the shard whose head carries the lowest sequence number.
    // Only consumers remove elements and consumers are serialized
    // here, so the chosen head cannot be stolen between the scan and
    // the pop below.
    int best = -1;
    uint64_t best_seq = std::numeric_limits<uint64_t>::max();
    for (size_t i = 0; i < shards_.size(); ++i) {
        Shard &s = *shards_[i];
        std::lock_guard<std::mutex> lk(s.mu);
        if (!s.q.empty() && s.q.front().seq < best_seq) {
            best_seq = s.q.front().seq;
            best = static_cast<int>(i);
        }
    }
    if (best < 0)
        return false;
    Shard &s = *shards_[static_cast<size_t>(best)];
    {
        std::lock_guard<std::mutex> lk(s.mu);
        out = std::move(s.q.front());
        s.q.pop_front();
    }
    size_.fetch_sub(1, std::memory_order_acq_rel);
    return true;
}

} // namespace serve
} // namespace twoinone
