/**
 * @file
 * serve::Server implementation — the dispatcher event loop.
 *
 * Locking: mu_ guards tenant registration, pending batches, stats,
 * and the pause/flush/stop flags; each RequestQueue carries its own
 * internal locks. submit never holds a queue lock while waiting for
 * mu_ (tryPush releases the shard lock before the stats update), so
 * the dispatcher may pop queues while holding mu_ without a lock-
 * order cycle. Batch compute runs with mu_ *released* — producers
 * keep admitting while a batch executes.
 */

#include "serve/server.hh"

#include <algorithm>
#include <chrono>

#include "common/logging.hh"
#include "serve/session.hh"

namespace twoinone {
namespace serve {

namespace {

using WClock = std::chrono::steady_clock;

} // namespace

const char *
schedulingPolicyName(SchedulingPolicy p)
{
    switch (p) {
      case SchedulingPolicy::RoundRobin: return "round_robin";
      case SchedulingPolicy::EarliestDeadlineFirst: return "edf";
    }
    TWOINONE_PANIC("unknown SchedulingPolicy");
}

Server::Server(ServerConfig cfg)
    : cfg_(cfg), clock_(cfg.clock != nullptr
                            ? cfg.clock
                            : &SteadyClock::instance())
{
    TWOINONE_ASSERT(cfg_.queueCapacity > 0,
                    "server needs a positive admission capacity");
    paused_ = cfg_.startPaused;
    dispatcher_ = std::thread([this] { dispatchLoop(); });
}

Server::~Server()
{
    stop();
}

Server::TenantId
Server::addTenant(Session &session, const std::vector<int> &input_shape)
{
    std::vector<int> shape =
        input_shape.empty() ? session.config().inputShape : input_shape;
    TWOINONE_ASSERT(!shape.empty(),
                    "async tenants need an explicit request image "
                    "shape (SessionConfig::inputShape or the "
                    "addTenant argument)");

    std::lock_guard<std::mutex> lk(mu_);
    // Server-scoped autotuner knobs ride in on the first tenant whose
    // checkpoint carried a tuning artifact (the session-scoped knobs
    // were already applied to its ServeConfig at load). Adopted
    // before any batch forms — later tenants never flip policy
    // mid-stream.
    if (cfg_.adoptTuning && tenants_.empty() &&
        session.tuningArtifact() != nullptr) {
        const tune::TuningArtifact &a = *session.tuningArtifact();
        cfg_.maxBatchDelayUs = a.genome.maxDelayUs;
        cfg_.policy = a.genome.policy == 1
                          ? SchedulingPolicy::EarliestDeadlineFirst
                          : SchedulingPolicy::RoundRobin;
    }
    ModelGroup *group = nullptr;
    for (auto &g : groups_) {
        if (g->net == &session.network()) {
            group = g.get();
            break;
        }
    }
    if (group == nullptr) {
        // First tenant of this model: its session's serving config
        // fixes the model's batch geometry and datapath.
        auto g = std::make_unique<ModelGroup>();
        g->net = &session.network();
        g->engine = &session.engine();
        g->exec = std::make_unique<BatchExecutor>(
            *g->net, *g->engine, shape, session.config().serving);
        group = g.get();
        groups_.push_back(std::move(g));
    } else {
        // Tenants of one model must share its engine: two engines
        // over one network would fight over the installed precision
        // and duplicate the weight-code cache.
        TWOINONE_ASSERT(&session.engine() == group->engine,
                        "tenants of one model must share its "
                        "RpsEngine — use Session::attach(net, "
                        "engine)");
        TWOINONE_ASSERT(shape == std::vector<int>(
                                     group->exec->rowShape().begin() + 1,
                                     group->exec->rowShape().end()),
                        "tenants of one model must share its request "
                        "image shape");
    }

    auto t = std::make_unique<Tenant>();
    t->session = &session;
    t->group = group;
    t->queue = std::make_unique<RequestQueue>(
        cfg_.queueShards, static_cast<size_t>(cfg_.queueCapacity));
    t->rng = Rng(session.config().serving.seed);
    tenants_.push_back(std::move(t));
    return static_cast<TenantId>(tenants_.size() - 1);
}

std::future<Reply>
Server::submit(TenantId tenant, Tensor x, uint64_t deadline_us)
{
    // Fetch the tenant under mu_ (addTenant may grow the vector);
    // the Tenant object itself is heap-stable.
    Tenant *tp = nullptr;
    {
        std::lock_guard<std::mutex> lk(mu_);
        TWOINONE_ASSERT(
            tenant >= 0 &&
                static_cast<size_t>(tenant) < tenants_.size(),
            "unknown tenant id ", tenant);
        tp = tenants_[static_cast<size_t>(tenant)].get();
    }
    Tenant &t = *tp;

    // Malformed requests are caller data, not library bugs: reject,
    // count, keep serving.
    try {
        t.group->exec->validate(x);
    } catch (const ServeError &) {
        std::lock_guard<std::mutex> lk(mu_);
        ++t.rejected;
        throw;
    }

    AsyncRequest r;
    r.tenant = tenant;
    r.x = std::move(x);
    r.arrivalNs = clock_->nowNs();
    uint64_t budget =
        deadline_us != 0 ? deadline_us : cfg_.defaultDeadlineUs;
    r.deadlineNs = budget != 0 ? r.arrivalNs + budget * 1000 : 0;
    std::future<Reply> fut = r.promise.get_future();

    // Count the request in flight *before* it becomes poppable — the
    // dispatcher may serve it (and decrement) the instant it lands.
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (stop_)
            throw ServeError("submit on a stopped server");
        ++inFlight_;
    }
    if (!t.queue->tryPush(r)) {
        // Admission control: the tenant's backlog is at capacity.
        // Shed here, at the cheapest possible point — before the
        // request ever occupies queue memory.
        std::lock_guard<std::mutex> lk(mu_);
        --inFlight_;
        ++t.shed;
        cv_.notify_all();
        throw ServeError(formatMessage(
            "shed at admission: tenant ", tenant, " queue is at "
            "capacity (", t.queue->capacity(), ")"));
    }
    cv_.notify_all();
    return fut;
}

void
Server::fillPending(Tenant &t)
{
    int cap = t.group->exec->maxBatch();
    if (t.stash.has_value()) {
        if (t.pendingRows + t.stash->x.dim(0) > cap)
            return;
        t.pendingRows += t.stash->x.dim(0);
        t.pending.push_back(std::move(*t.stash));
        t.stash.reset();
    }
    AsyncRequest r;
    while (t.queue->pop(r)) {
        if (t.pendingRows + r.x.dim(0) > cap) {
            t.stash = std::move(r);
            return;
        }
        t.pendingRows += r.x.dim(0);
        t.pending.push_back(std::move(r));
    }
}

uint64_t
Server::earliestDeadlineNs(const Tenant &t)
{
    uint64_t best = UINT64_MAX;
    for (const AsyncRequest &r : t.pending)
        if (r.deadlineNs != 0 && r.deadlineNs < best)
            best = r.deadlineNs;
    return best;
}

bool
Server::closeable(const Tenant &t, uint64_t now_ns) const
{
    if (t.pending.empty())
        return false;
    // Size close: full, or the stashed head request does not fit —
    // the same whole-request packing boundary the synchronous drain
    // uses.
    if (t.pendingRows >= t.group->exec->maxBatch() ||
        t.stash.has_value())
        return true;
    // Flush close: nothing more is coming; serve the partial batch.
    if (flushing_ && !t.stash.has_value() && t.queue->empty())
        return true;
    // Age close: the oldest request has waited out the batch delay
    // (disabled entirely at <= 0 — partial batches then wait for
    // size or flush, the fully clock-independent configuration).
    if (cfg_.maxBatchDelayUs <= 0.0)
        return false;
    uint64_t oldest = t.pending.front().arrivalNs;
    uint64_t delay_ns =
        static_cast<uint64_t>(cfg_.maxBatchDelayUs * 1000.0);
    return now_ns >= oldest + delay_ns;
}

void
Server::dispatchLoop()
{
    std::unique_lock<std::mutex> lk(mu_);
    while (!stop_) {
        if (paused_ && !flushing_) {
            cv_.wait(lk, [this] {
                return stop_ || !paused_ || flushing_;
            });
            continue;
        }
        uint64_t now = clock_->nowNs();

        int picked = -1;
        if (cfg_.policy == SchedulingPolicy::EarliestDeadlineFirst) {
            // Deadline scheduling: fill every tenant, then serve the
            // closeable batch whose most urgent pending request has
            // the earliest absolute deadline. No deadline sorts last
            // (UINT64_MAX); ties break to the lowest tenant id, so
            // the pick order is deterministic under a ManualClock.
            uint64_t best = UINT64_MAX;
            for (size_t id = 0; id < tenants_.size(); ++id) {
                Tenant &t = *tenants_[id];
                fillPending(t);
                if (!closeable(t, now))
                    continue;
                uint64_t key = earliestDeadlineNs(t);
                if (picked < 0 || key < best) {
                    picked = static_cast<int>(id);
                    best = key;
                }
            }
        } else {
            // Fair scheduling: scan tenants round-robin from the
            // cursor, serving at most one closed batch per turn so a
            // backlogged tenant cannot starve the others.
            for (size_t i = 0; i < tenants_.size(); ++i) {
                size_t id = (cursor_ + i) % tenants_.size();
                Tenant &t = *tenants_[id];
                fillPending(t);
                if (closeable(t, now)) {
                    picked = static_cast<int>(id);
                    break;
                }
            }
        }
        if (picked < 0) {
            // Nothing closeable: idle until a submit lands or (real)
            // time passes. The poll bounds how late an age close or a
            // ManualClock advance is noticed; batching *decisions*
            // only ever read clock_.
            cv_.wait_for(lk,
                         std::chrono::microseconds(cfg_.idlePollUs));
            continue;
        }

        Tenant *t = tenants_[static_cast<size_t>(picked)].get();
        std::vector<AsyncRequest> batch = std::move(t->pending);
        t->pending.clear();
        t->pendingRows = 0;
        cursor_ = (static_cast<size_t>(picked) + 1) % tenants_.size();

        lk.unlock();
        executeBatch(*t, picked, std::move(batch));
        lk.lock();
        if (inFlight_ == 0)
            cv_.notify_all(); // flush() waiters
    }
}

void
Server::shedRequest(AsyncRequest &r, const std::string &why)
{
    r.promise.set_exception(
        std::make_exception_ptr(ServeError(why)));
}

void
Server::executeBatch(Tenant &t, int tenant_id,
                     std::vector<AsyncRequest> batch)
{
    BatchExecutor &exec = *t.group->exec;

    // Deadline shed before compute: a request that already expired
    // gets ServeError through its future instead of wasting a slot in
    // the batch.
    uint64_t now = clock_->nowNs();
    size_t kept = 0, expired = 0;
    for (size_t i = 0; i < batch.size(); ++i) {
        AsyncRequest &r = batch[i];
        if (r.deadlineNs != 0 && now > r.deadlineNs) {
            shedRequest(r, formatMessage(
                "deadline expired: request waited ",
                (now - r.arrivalNs) / 1000, "us, budget was ",
                (r.deadlineNs - r.arrivalNs) / 1000, "us"));
            ++expired;
            continue;
        }
        if (kept != i)
            batch[kept] = std::move(r);
        ++kept;
    }
    batch.resize(kept);
    if (expired > 0) {
        std::lock_guard<std::mutex> lk(mu_);
        t.shed += expired;
        inFlight_ -= expired;
    }
    if (batch.empty())
        return;

    WClock::time_point wall_start = WClock::now();

    // One precision draw per serving batch (paper Alg. 1 line 16)
    // from the tenant's own seeded stream, installed through the
    // model's shared code cache.
    int bits = exec.samplePrecision(t.rng);
    exec.installPrecision(bits);

    // Gather/scatter tables pointing straight at the request inputs
    // and the per-request reply tensors.
    size_t row_elems = exec.rowElems();
    size_t out_cols = exec.outCols();
    int rows = 0;
    for (const auto &r : batch)
        rows += r.x.dim(0);
    std::vector<Tensor> replies(batch.size());
    std::vector<const float *> src(static_cast<size_t>(rows));
    std::vector<float *> dst(static_cast<size_t>(rows));
    {
        size_t row = 0;
        for (size_t i = 0; i < batch.size(); ++i) {
            int n = batch[i].x.dim(0);
            replies[i].ensure({n, static_cast<int>(out_cols)});
            for (int j = 0; j < n; ++j) {
                src[row] = batch[i].x.data() +
                           static_cast<size_t>(j) * row_elems;
                dst[row] = replies[i].data() +
                           static_cast<size_t>(j) * out_cols;
                ++row;
            }
        }
    }

    exec.execute(src.data(), dst.data(), rows);

    uint64_t done = clock_->nowNs();
    double wall = std::chrono::duration<double>(WClock::now() -
                                                wall_start)
                      .count();

    std::vector<double> latencies(batch.size());
    for (size_t i = 0; i < batch.size(); ++i)
        latencies[i] =
            static_cast<double>(done - batch[i].arrivalNs) / 1000.0;

    // Record the batch before fulfilling its promises: a caller woken
    // by future.get() must observe this batch in stats()/traces.
    {
        std::lock_guard<std::mutex> lk(mu_);
        t.trace.push_back(bits);
        batchLog_.push_back(tenant_id);
        t.requests += batch.size();
        t.rows += static_cast<uint64_t>(rows);
        t.batches += 1;
        t.wallSeconds += wall;
        for (double l : latencies)
            t.latencyUs.add(l);
    }

    for (size_t i = 0; i < batch.size(); ++i) {
        Reply reply;
        reply.y = std::move(replies[i]);
        reply.precision = bits;
        reply.latencyUs = latencies[i];
        batch[i].promise.set_value(std::move(reply));
    }

    // inFlight_ drops only after the promises are fulfilled, so a
    // flush() return guarantees every future is ready.
    std::lock_guard<std::mutex> lk(mu_);
    inFlight_ -= batch.size();
}

void
Server::flush()
{
    std::unique_lock<std::mutex> lk(mu_);
    if (stopped_)
        return;
    flushing_ = true;
    cv_.notify_all();
    cv_.wait(lk, [this] { return inFlight_ == 0 || stopped_; });
    flushing_ = false;
}

void
Server::pause()
{
    std::lock_guard<std::mutex> lk(mu_);
    paused_ = true;
}

void
Server::resume()
{
    std::lock_guard<std::mutex> lk(mu_);
    paused_ = false;
    cv_.notify_all();
}

void
Server::stop()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (stopped_)
            return;
        stop_ = true;
        cv_.notify_all();
    }
    dispatcher_.join();

    // Shed everything still in flight: forming batches, stashed
    // heads, queued requests. Their futures deliver ServeError.
    std::lock_guard<std::mutex> lk(mu_);
    for (auto &tp : tenants_) {
        Tenant &t = *tp;
        uint64_t dropped = 0;
        for (auto &r : t.pending) {
            shedRequest(r, "server stopped before the request was "
                           "served");
            ++dropped;
        }
        t.pending.clear();
        t.pendingRows = 0;
        if (t.stash.has_value()) {
            shedRequest(*t.stash, "server stopped before the request "
                                  "was served");
            t.stash.reset();
            ++dropped;
        }
        AsyncRequest r;
        while (t.queue->pop(r)) {
            shedRequest(r, "server stopped before the request was "
                           "served");
            ++dropped;
        }
        t.shed += dropped;
        inFlight_ -= dropped;
    }
    stopped_ = true;
    cv_.notify_all();
}

ServerConfig
Server::config() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return cfg_;
}

ServeStats
Server::stats() const
{
    std::lock_guard<std::mutex> lk(mu_);
    ServeStats s;
    for (const auto &tp : tenants_) {
        const Tenant &t = *tp;
        s.requests += t.requests;
        s.rows += t.rows;
        s.batches += t.batches;
        s.rejected += t.rejected;
        s.shed += t.shed;
        s.wallSeconds += t.wallSeconds;
    }
    // QuantileSketch has no merge, so the aggregate reports the max
    // per-tenant quantile — a conservative (pessimistic) tail bound.
    for (const auto &tp : tenants_) {
        s.p50Us = std::max(s.p50Us, tp->latencyUs.quantile(0.5));
        s.p99Us = std::max(s.p99Us, tp->latencyUs.quantile(0.99));
        s.p999Us = std::max(s.p999Us, tp->latencyUs.quantile(0.999));
    }
    s.qps = s.wallSeconds > 0.0
                ? static_cast<double>(s.rows) / s.wallSeconds
                : 0.0;
    return s;
}

ServeStats
Server::tenantStats(TenantId tenant) const
{
    std::lock_guard<std::mutex> lk(mu_);
    TWOINONE_ASSERT(tenant >= 0 &&
                        static_cast<size_t>(tenant) < tenants_.size(),
                    "unknown tenant id ", tenant);
    const Tenant &t = *tenants_[static_cast<size_t>(tenant)];
    ServeStats s;
    s.requests = t.requests;
    s.rows = t.rows;
    s.batches = t.batches;
    s.rejected = t.rejected;
    s.shed = t.shed;
    s.wallSeconds = t.wallSeconds;
    s.qps = s.wallSeconds > 0.0
                ? static_cast<double>(s.rows) / s.wallSeconds
                : 0.0;
    s.p50Us = t.latencyUs.quantile(0.5);
    s.p99Us = t.latencyUs.quantile(0.99);
    s.p999Us = t.latencyUs.quantile(0.999);
    return s;
}

const std::vector<int> &
Server::precisionTrace(TenantId tenant) const
{
    TWOINONE_ASSERT(tenant >= 0 &&
                        static_cast<size_t>(tenant) < tenants_.size(),
                    "unknown tenant id ", tenant);
    return tenants_[static_cast<size_t>(tenant)]->trace;
}

size_t
Server::queued(TenantId tenant) const
{
    TWOINONE_ASSERT(tenant >= 0 &&
                        static_cast<size_t>(tenant) < tenants_.size(),
                    "unknown tenant id ", tenant);
    return tenants_[static_cast<size_t>(tenant)]->queue->size();
}

int
Server::numTenants() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return static_cast<int>(tenants_.size());
}

} // namespace serve
} // namespace twoinone
