/**
 * @file
 * Finely sharded MPMC request queue feeding the async serving
 * front-end (serve/server.hh).
 *
 * Producers (request threads calling Server::submit) are spread over
 * S independent mutex-guarded shards by an atomic round-robin ticket,
 * so under multi-producer load the shards' locks are contended 1/S as
 * often as a single queue lock would be. Every pushed request carries
 * a globally ordered sequence number drawn from one atomic counter;
 * consumers always pop the lowest-sequence head across the shards, so
 * the queue is FIFO in submission order even though the storage is
 * sharded — which is what makes async batch composition reproduce the
 * synchronous drain's packing exactly when submissions are ordered.
 *
 * Consumers serialize on a dedicated pop mutex (the dispatcher is the
 * only steady-state consumer; the lock exists so shutdown paths and
 * future multi-dispatcher configurations stay correct), while
 * producers keep their sharded fast path. Capacity is enforced with
 * an atomic size counter: tryPush refuses when full, which is the
 * admission-control point — the Server turns that refusal into a
 * counted ServeError shed instead of queueing unbounded backlog.
 */

#ifndef TWOINONE_SERVE_REQUEST_QUEUE_HH
#define TWOINONE_SERVE_REQUEST_QUEUE_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <vector>

#include "tensor/tensor.hh"

namespace twoinone {
namespace serve {

/** A completed request: logits plus the serving metadata callers need
 * to audit the RPS defense (which precision served the batch) and
 * their latency budget. Delivered through a std::future; a shed or
 * cancelled request delivers a serve::ServeError exception instead. */
struct Reply
{
    Tensor y;            ///< logits, one row per submitted image
    int precision = 0;   ///< the batch's sampled precision (0 = fp)
    double latencyUs = 0.0; ///< submit -> completion on the server clock
};

/** One queued request (internal to the Server). */
struct AsyncRequest
{
    uint64_t seq = 0;       ///< global FIFO order
    int tenant = -1;        ///< owning tenant id
    Tensor x;               ///< input rows
    uint64_t arrivalNs = 0; ///< clock time at admission
    uint64_t deadlineNs = 0;///< absolute expiry; 0 = no deadline
    std::promise<Reply> promise;
};

/**
 * Bounded sharded MPMC FIFO of AsyncRequests. push is sharded
 * (multi-producer fast path); pop serializes consumers and returns
 * requests in global sequence order.
 */
class RequestQueue
{
  public:
    /**
     * @param shards Independent producer shards (clamped to >= 1).
     * @param capacity Max queued requests before tryPush refuses.
     */
    RequestQueue(int shards, size_t capacity);

    RequestQueue(const RequestQueue &) = delete;
    RequestQueue &operator=(const RequestQueue &) = delete;

    /**
     * Enqueue @p r (its seq is assigned here). Returns false — and
     * leaves @p r intact for the caller to shed — when the queue is
     * at capacity.
     */
    bool tryPush(AsyncRequest &r);

    /**
     * Pop the lowest-sequence queued request into @p out. Returns
     * false when the queue is empty.
     */
    bool pop(AsyncRequest &out);

    /** Requests currently queued. */
    size_t size() const
    {
        return size_.load(std::memory_order_acquire);
    }

    bool empty() const { return size() == 0; }

    size_t capacity() const { return capacity_; }
    int shards() const { return static_cast<int>(shards_.size()); }

  private:
    struct alignas(64) Shard
    {
        std::mutex mu;
        std::deque<AsyncRequest> q;
    };

    std::vector<std::unique_ptr<Shard>> shards_;
    size_t capacity_;
    std::atomic<uint64_t> ticket_{0}; ///< producer shard round-robin
    std::atomic<uint64_t> seq_{0};    ///< global FIFO order
    std::atomic<size_t> size_{0};
    std::mutex popMu_; ///< consumers serialize (see file comment)
};

} // namespace serve
} // namespace twoinone

#endif // TWOINONE_SERVE_REQUEST_QUEUE_HH
