/**
 * @file
 * serve::Server — the asynchronous, deadline-aware, multi-tenant
 * serving front-end.
 *
 * Where ServingRuntime drains synchronously on the caller thread, the
 * Server runs a real event loop: producers submit from any thread
 * into a finely sharded MPMC RequestQueue per tenant (admission
 * control: a full queue sheds at submit with ServeError), and one
 * dispatcher thread forms serving batches with arrival-time adaptive
 * micro-batching — a batch closes when the next whole request would
 * overflow maxBatch (*size*) or when its oldest request has waited
 * maxBatchDelayUs (*age*), whichever comes first. Before a batch
 * computes, requests whose deadline already expired are shed (their
 * futures deliver ServeError; compute is never wasted on them). Each
 * closed batch draws one random precision from the tenant's seeded
 * stream (the paper's RPS defense), installs it through the shared
 * per-model RpsEngine in O(#layers), and executes on the shared
 * BatchExecutor, sharding micro-batches across the global ThreadPool.
 *
 * Multi-tenancy: many twoinone::Sessions register as tenants. Tenants
 * of the same model share one BatchExecutor and one RpsEngine (plan
 * replicas and weight-code caches are per model, not per tenant —
 * closing the PR 5 Session::attach fresh-engine follow-up), while
 * keeping their own queues, precision streams, traces, and stats.
 * The dispatcher schedules fairly: one closed batch per tenant turn,
 * round-robin over tenants with runnable work, so a backlogged tenant
 * cannot starve the others.
 *
 * Determinism: all timing decisions (age close, deadlines, latency
 * stamps) read the injected common/clock.hh Clock. Under a frozen
 * ManualClock batches close only on size or flush(), which makes
 * batch composition — and therefore precision traces and served
 * logits — a pure function of the submission order: a single-tenant
 * Server reproduces the synchronous drain bit for bit at every
 * candidate precision (pinned in tests/test_server.cc).
 */

#ifndef TWOINONE_SERVE_SERVER_HH
#define TWOINONE_SERVE_SERVER_HH

#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "serve/request_queue.hh"
#include "serve/runtime.hh"

namespace twoinone {

class Session;

namespace serve {

/** How the dispatcher picks the next closed batch among tenants. */
enum class SchedulingPolicy
{
    /** One batch per tenant turn, cursor scan — a backlogged tenant
     * cannot starve the others. The default; batch composition is
     * bit-identical to servers predating the policy knob. */
    RoundRobin,
    /** Serve the closeable batch whose most urgent pending request
     * has the earliest absolute deadline (requests without a
     * deadline sort last; ties go to the lowest tenant id). Trades
     * strict fairness for tail latency under deadline pressure —
     * the policy the serving autotuner searches over. */
    EarliestDeadlineFirst,
};

/** Policy name for reports/journals. */
const char *schedulingPolicyName(SchedulingPolicy p);

/** Async front-end configuration (per Server; batch geometry and the
 * precision seed come from each tenant session's ServeConfig). */
struct ServerConfig
{
    /** Producer shards per tenant queue. */
    int queueShards = 4;
    /** Admission bound: requests queued per tenant before submit
     * sheds with ServeError. */
    int queueCapacity = 1024;
    /** Age close: a non-empty batch whose oldest request has waited
     * this long is served even when not full. <= 0 disables age
     * closing — partial batches then wait for size or flush(). */
    double maxBatchDelayUs = 1000.0;
    /** Deadline applied to requests submitted without an explicit
     * one; 0 = no deadline. */
    uint64_t defaultDeadlineUs = 0;
    /** Start with the dispatcher paused (tests build backlog first,
     * then resume()). */
    bool startPaused = false;
    /** Time source for age/deadline/latency decisions; null = the
     * process SteadyClock. A ManualClock makes every batching and
     * shedding decision deterministic. */
    const Clock *clock = nullptr;
    /** Dispatcher idle re-check period (real microseconds). Purely a
     * liveness knob — with a ManualClock it bounds how long the
     * dispatcher takes to *notice* an advanced clock, never what it
     * decides. */
    int idlePollUs = 100;
    /** Batch-picking policy across tenants. */
    SchedulingPolicy policy = SchedulingPolicy::RoundRobin;
    /** Adopt the server-scoped autotuner knobs (maxBatchDelayUs,
     * policy) from the *first* tenant session carrying a tuning
     * artifact, before any batch forms. Sessions without an artifact
     * change nothing either way. */
    bool adoptTuning = true;
};

/**
 * The multi-tenant async server. Movable-nothing (owns a thread).
 */
class Server
{
  public:
    using TenantId = int;

    explicit Server(ServerConfig cfg = ServerConfig());

    /** Stops the dispatcher and sheds any in-flight requests. */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Register @p session as a tenant. Tenants on the same Network
     * must share the same RpsEngine (Session::attach has a shared-
     * engine overload) — the first tenant of a model compiles the
     * shared BatchExecutor from its session's serving config, and
     * @p input_shape (or the session's configured inputShape) fixes
     * the request geometry.
     */
    TenantId addTenant(Session &session,
                       const std::vector<int> &input_shape = {});

    /**
     * Submit a request of x.dim(0) images for @p tenant from any
     * thread. Returns a future delivering the logits, the batch's
     * sampled precision, and the request latency. Throws ServeError
     * — and counts it — when the request is malformed (rejected) or
     * the tenant's admission queue is full (shed). @p deadline_us
     * (relative to now; 0 = the config default) sheds the request
     * without computing it if a batch cannot start by then; the shed
     * is delivered through the future as ServeError.
     */
    std::future<Reply> submit(TenantId tenant, Tensor x,
                              uint64_t deadline_us = 0);

    /**
     * Serve everything admitted so far and block until every
     * in-flight request has completed or been shed. Partial batches
     * are closed once their queue is empty (overrides the age timer
     * and a paused dispatcher).
     */
    void flush();

    /** Suspend batch formation (admission stays open). */
    void pause();
    /** Resume batch formation. */
    void resume();

    /**
     * Stop the dispatcher; every request not yet served is shed with
     * ServeError. Idempotent; also run by the destructor.
     */
    void stop();

    /** The effective configuration (after any tuning adoption at the
     * first addTenant — see ServerConfig::adoptTuning). */
    ServerConfig config() const;

    /** Aggregate stats over all tenants. */
    ServeStats stats() const;
    /** One tenant's stats. */
    ServeStats tenantStats(TenantId tenant) const;

    /**
     * Precisions sampled so far for @p tenant, one per served batch.
     * Read it quiesced (after flush()/pause()/stop()) — the
     * dispatcher appends concurrently while running.
     */
    const std::vector<int> &precisionTrace(TenantId tenant) const;

    /**
     * Tenant ids in batch-completion order (fair-scheduling
     * observability; same quiescence contract as precisionTrace).
     */
    const std::vector<TenantId> &batchLog() const { return batchLog_; }

    /** Requests currently queued for @p tenant (excludes the batch
     * being formed). */
    size_t queued(TenantId tenant) const;

    int numTenants() const;

  private:
    /** Tenants of one model share the executor + engine. */
    struct ModelGroup
    {
        Network *net = nullptr;
        RpsEngine *engine = nullptr;
        std::unique_ptr<BatchExecutor> exec;
    };

    struct Tenant
    {
        Session *session = nullptr;
        ModelGroup *group = nullptr;
        std::unique_ptr<RequestQueue> queue;
        /** Head request that did not fit the forming batch. */
        std::optional<AsyncRequest> stash;
        /** The forming (not yet closed) batch. */
        std::vector<AsyncRequest> pending;
        int pendingRows = 0;
        Rng rng{0};
        std::vector<int> trace;
        // Stats (guarded by mu_).
        uint64_t requests = 0, rows = 0, batches = 0;
        uint64_t rejected = 0, shed = 0;
        double wallSeconds = 0.0;
        QuantileSketch latencyUs;
    };

    void dispatchLoop();
    /** Move queued requests into @p t's forming batch (whole-request
     * packing, same rule as the synchronous drain). */
    void fillPending(Tenant &t);
    /** Whether @p t's forming batch must be served now. */
    bool closeable(const Tenant &t, uint64_t now_ns) const;
    /** Earliest absolute deadline among @p t's pending requests
     * (UINT64_MAX when none carries a deadline) — the EDF sort key. */
    static uint64_t earliestDeadlineNs(const Tenant &t);
    /** Serve one closed batch (called with mu_ *unlocked*). */
    void executeBatch(Tenant &t, int tenant_id,
                      std::vector<AsyncRequest> batch);
    /** Shed one request with @p why (fulfils its promise). */
    static void shedRequest(AsyncRequest &r, const std::string &why);

    ServerConfig cfg_;
    const Clock *clock_;

    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::vector<std::unique_ptr<ModelGroup>> groups_;
    std::vector<std::unique_ptr<Tenant>> tenants_;
    std::vector<TenantId> batchLog_;
    size_t cursor_ = 0; ///< fair-scheduling round-robin position
    uint64_t inFlight_ = 0; ///< admitted, not yet completed/shed
    bool paused_ = false;
    bool flushing_ = false;
    bool stop_ = false;
    bool stopped_ = false;
    std::thread dispatcher_;
};

} // namespace serve
} // namespace twoinone

#endif // TWOINONE_SERVE_SERVER_HH
