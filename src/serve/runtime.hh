/**
 * @file
 * The batched RPS serving core: BatchExecutor (shared by the
 * synchronous ServingRuntime and the async serve::Server) plus the
 * synchronous caller-thread runtime.
 *
 * BatchExecutor owns the compiled ExecutionPlan replicas for one
 * (network, engine, request shape) and executes one serving batch at
 * a time: install a precision through the RpsEngine's code cache
 * (O(#layers)), gather request rows straight from caller-owned row
 * pointers into per-replica plan arenas sharded across the global
 * ThreadPool, and scatter the logits straight back into caller-owned
 * row pointers. The layers are read-only during a batch, so replicas
 * share the weights and caches while owning their arenas and write
 * disjoint logit rows — outputs are bit-identical for any
 * TWOINONE_THREADS setting, and the precision trace is a pure
 * function of the caller's sampling seed.
 *
 * ServingRuntime keeps the original synchronous contract on top:
 * requests enqueue via submit(), drain() packs them into serving
 * batches (one random precision draw each — the paper's RPS defense)
 * and blocks until every result is ready. The asynchronous,
 * deadline-aware, multi-tenant front-end lives in serve/server.hh and
 * drives the same executor.
 *
 * Stats: rows/s (QPS), per-request p50/p99/p99.9 latency, batches
 * served, rejections, sheds, and the sampled precision trace.
 */

#ifndef TWOINONE_SERVE_RUNTIME_HH
#define TWOINONE_SERVE_RUNTIME_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"

#include "quant/rps_engine.hh"
#include "serve/execution_plan.hh"

namespace twoinone {
namespace serve {

/**
 * A serving request (or serving-control call) was rejected or shed:
 * malformed shape, oversized batch, a precision outside the model's
 * bound set, a full admission queue, or an expired deadline. This is
 * a *recoverable caller-facing* condition — production traffic
 * contains garbage and overload, and one poisoned or late request
 * must not take the runtime down — so it throws (or is delivered
 * through the request's future) instead of panicking; the runtime
 * stays healthy and counts the event (ServeStats::rejected /
 * ServeStats::shed).
 */
class ServeError : public std::runtime_error
{
  public:
    explicit ServeError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** Serving-loop configuration. */
struct ServeConfig
{
    /** Rows per serving batch (one precision draw each). */
    int maxBatch = 64;
    /** Rows per shard dispatched to a worker (also the plan replicas'
     * compiled batch capacity). */
    int microBatch = 8;
    /** Which datapath the plans compile. */
    PlanMode mode = PlanMode::Quantized;
    /** Precision-sampling seed (deterministic trace). */
    uint64_t seed = 2021;
    /** Plan replicas to compile; 0 = one per concurrent shard worker
     * (min of the pool thread count and shards per serving batch).
     * Shards are dealt to at most this many worker groups, so any
     * positive value is safe — fewer replicas just cap the shard
     * parallelism. */
    int replicas = 0;
    /** Compile plans lazily: skip the per-candidate warm-up dry
     * passes at construction, letting each candidate size its arena
     * buffers on its first served batch instead. Cuts cold-start
     * latency roughly by the candidate-set size (reported as
     * session_cold_start by microbench_rps); served outputs are
     * bit-identical either way. */
    bool lazyPlanWarmup = false;
    /** Precision-distribution policy: restrict the per-batch draw to
     * this subset of the engine's candidate set, weighted by
     * drawWeights. Empty = the historical uniform draw over the full
     * engine set (bit-identical traces to servers predating the
     * knob). Must be a subset of the engine's cached set; validated
     * at BatchExecutor construction. */
    std::vector<int> drawBits;
    /** Relative draw weights, parallel to drawBits (> 0 each). Empty
     * with a non-empty drawBits = uniform over drawBits. */
    std::vector<float> drawWeights;
};

/** Aggregate serving statistics since the last reset. */
struct ServeStats
{
    uint64_t requests = 0;
    uint64_t rows = 0;
    uint64_t batches = 0;
    /** Malformed/oversized submissions rejected with ServeError while
     * the runtime kept serving (graceful-degradation counter). */
    uint64_t rejected = 0;
    /** Well-formed requests dropped by load shedding: refused at
     * admission (full queue), expired past their deadline before
     * compute, or cancelled by shutdown. Always 0 for the synchronous
     * ServingRuntime, which has no admission queue or deadlines. */
    uint64_t shed = 0;
    double wallSeconds = 0.0;
    double qps = 0.0;   ///< rows per second of serving wall time
    double p50Us = 0.0; ///< median request latency (submit -> done)
    double p99Us = 0.0;
    double p999Us = 0.0;
};

/**
 * The shared batch-execution core: compiled plan replicas plus the
 * gather/compute/scatter of one serving batch. Not thread-safe — one
 * execute() at a time (the sync runtime calls it from the draining
 * thread, the async Server from its dispatcher); the parallelism
 * lives *inside* execute(), across the global ThreadPool.
 */
class BatchExecutor
{
  public:
    /**
     * @param net Network to serve (plans compile against it).
     * @param engine Precision-switch cache (must be built on @p net).
     * @param input_shape Per-request image shape [C, H, W...] (the
     *        trailing dims of every submitted batch).
     * @param cfg Serving configuration.
     */
    BatchExecutor(Network &net, RpsEngine &engine,
                  const std::vector<int> &input_shape,
                  ServeConfig cfg = ServeConfig());

    /**
     * Validate a request batch against the compiled geometry: throws
     * ServeError on wrong rank, wrong image shape, empty, or more
     * rows than the serving-batch capacity. Does not count anything —
     * the owning front-end counts rejections.
     */
    void validate(const Tensor &x) const;

    /** Sample one precision: uniform from the engine's candidate set,
     * or the configured weighted draw over ServeConfig::drawBits. */
    int samplePrecision(Rng &rng) const;

    /** Install @p bits through the engine code cache (O(#layers)). */
    void installPrecision(int bits) { engine_.setPrecision(bits); }

    /**
     * Execute one serving batch of @p rows rows at the currently
     * installed precision: gather input rows from @p row_src
     * (rowElems() floats each), shard across the pool on the plan
     * replicas, scatter logit rows (outCols() floats each) into
     * @p row_dst. Shard boundaries depend only on microBatch, so
     * outputs are identical for any thread or replica count.
     */
    void execute(const float *const *row_src, float *const *row_dst,
                 int rows);

    const ServeConfig &config() const { return cfg_; }
    int maxBatch() const { return cfg_.maxBatch; }
    /** [1, C, H, W...]: one image. */
    const std::vector<int> &rowShape() const { return rowShape_; }
    /** Floats per input row. */
    size_t rowElems() const { return rowElems_; }
    /** Floats per logit row. */
    size_t outCols() const { return outCols_; }

    int numReplicas() const { return static_cast<int>(plans_.size()); }
    const ExecutionPlan &plan(int i) const { return *plans_[i]; }

    Network &network() { return net_; }
    RpsEngine &engine() { return engine_; }

  private:
    Network &net_;
    RpsEngine &engine_;
    ServeConfig cfg_;
    std::vector<int> rowShape_;
    size_t rowElems_ = 0;
    size_t outCols_ = 0;
    std::vector<std::unique_ptr<ExecutionPlan>> plans_;
    /** Cumulative draw weights over cfg_.drawBits (empty = the
     * uniform engine draw). */
    std::vector<double> drawCum_;
};

/**
 * Synchronous request-queue serving runtime. Not thread-safe itself
 * (one producer); the parallelism lives inside drain().
 */
class ServingRuntime
{
  public:
    /** See BatchExecutor for the parameter contracts. */
    ServingRuntime(Network &net, RpsEngine &engine,
                   const std::vector<int> &input_shape,
                   ServeConfig cfg = ServeConfig());

    /**
     * Enqueue a request of x.dim(0) images; returns its id. A
     * malformed request — wrong rank, wrong image shape, empty, or
     * more rows than the serving-batch capacity — is rejected with
     * ServeError: nothing is enqueued, the rejection is counted
     * (ServeStats::rejected), and the runtime keeps serving.
     */
    size_t submit(Tensor x);

    /** Serve everything queued; blocks until all results are ready. */
    void drain();

    /** Logits of request @p id (valid after drain(), until
     * clearServed()). */
    const Tensor &result(size_t id) const;

    /**
     * Release the stored input and result tensors of every served
     * request (ids stay allocated; result() on a cleared id panics).
     * Long-lived submit/drain loops must call this after consuming
     * results — served requests are otherwise retained so their
     * results stay addressable.
     */
    void clearServed();

    /** Precisions sampled so far, one per served batch. */
    const std::vector<int> &precisionTrace() const { return trace_; }

    ServeStats stats() const;
    void resetStats();

    int numReplicas() const { return exec_.numReplicas(); }
    const ExecutionPlan &plan(int i) const { return exec_.plan(i); }

    /** The shared batch-execution core (async front-end plumbing). */
    BatchExecutor &executor() { return exec_; }

  private:
    struct Request
    {
        Tensor x;
        Tensor y;
        std::chrono::steady_clock::time_point enqueued;
        double latencyUs = 0.0;
        bool done = false;
        bool cleared = false;
    };

    BatchExecutor exec_;
    Rng rng_;

    std::vector<Request> requests_;
    size_t nextToServe_ = 0;

    /** Per-row staging/scatter pointer tables: shards stage straight
     * from the request tensors and logits scatter straight back into
     * the request results — no packed batch or logit buffer between
     * (one copy per side instead of two). */
    std::vector<const float *> rowSrc_;
    std::vector<float *> rowDst_;
    std::vector<int> trace_;

    // Stats.
    uint64_t servedRequests_ = 0;
    uint64_t servedRows_ = 0;
    uint64_t servedBatches_ = 0;
    uint64_t rejected_ = 0;
    double wallSeconds_ = 0.0;
    /** Bounded-memory latency quantiles: soak runs add one sample per
     * request forever, so an exact sorted vector would grow without
     * limit; the sketch pins p50/p99 within its relative-error bound
     * at fixed memory. */
    QuantileSketch latencyUs_;

    /** Serve one packed batch of @p rows rows from requests
     * [first, last). */
    void serveBatch(size_t first, size_t last, int rows);
};

} // namespace serve
} // namespace twoinone

#endif // TWOINONE_SERVE_RUNTIME_HH
