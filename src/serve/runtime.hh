/**
 * @file
 * ServingRuntime: the batched RPS serving loop on top of compiled
 * execution plans.
 *
 * Requests (image batches) enqueue via submit(); drain() packs them
 * into serving batches, samples one random precision per batch from
 * the candidate set (the paper's RPS defense — every batch of traffic
 * sees an unpredictable precision), installs it through the
 * RpsEngine's code cache in O(#layers), and shards the batch into
 * micro-batches across the global ThreadPool. Each worker chunk runs
 * its shards on its own ExecutionPlan replica — the layers are
 * read-only during a batch, so replicas share the weights and caches
 * while owning their arenas — and writes disjoint logit rows, so the
 * served outputs are bit-identical for any TWOINONE_THREADS setting
 * and the precision trace is a pure function of the seed.
 *
 * Stats: rows/s (QPS), per-request p50/p99 latency, batches served,
 * and the sampled precision trace.
 */

#ifndef TWOINONE_SERVE_RUNTIME_HH
#define TWOINONE_SERVE_RUNTIME_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"

#include "quant/rps_engine.hh"
#include "serve/execution_plan.hh"

namespace twoinone {
namespace serve {

/**
 * A serving request (or serving-control call) was rejected: malformed
 * shape, oversized batch, or a precision outside the model's bound
 * set. This is a *recoverable caller-facing* condition — production
 * traffic contains garbage, and one poisoned request must not take
 * the runtime down — so it throws instead of panicking; the runtime
 * stays healthy and counts the rejection (ServeStats::rejected).
 */
class ServeError : public std::runtime_error
{
  public:
    explicit ServeError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** Serving-loop configuration. */
struct ServeConfig
{
    /** Rows per serving batch (one precision draw each). */
    int maxBatch = 64;
    /** Rows per shard dispatched to a worker (also the plan replicas'
     * compiled batch capacity). */
    int microBatch = 8;
    /** Which datapath the plans compile. */
    PlanMode mode = PlanMode::Quantized;
    /** Precision-sampling seed (deterministic trace). */
    uint64_t seed = 2021;
    /** Plan replicas to compile; 0 = one per concurrent shard worker
     * (min of the pool thread count and shards per serving batch).
     * Shards are dealt to at most this many worker groups, so any
     * positive value is safe — fewer replicas just cap the shard
     * parallelism. */
    int replicas = 0;
    /** Compile plans lazily: skip the per-candidate warm-up dry
     * passes at construction, letting each candidate size its arena
     * buffers on its first served batch instead. Cuts cold-start
     * latency roughly by the candidate-set size (reported as
     * session_cold_start by microbench_rps); served outputs are
     * bit-identical either way. */
    bool lazyPlanWarmup = false;
};

/** Aggregate serving statistics since the last reset. */
struct ServeStats
{
    uint64_t requests = 0;
    uint64_t rows = 0;
    uint64_t batches = 0;
    /** Malformed/oversized submissions rejected with ServeError while
     * the runtime kept serving (graceful-degradation counter). */
    uint64_t rejected = 0;
    double wallSeconds = 0.0;
    double qps = 0.0;   ///< rows per second of drain() wall time
    double p50Us = 0.0; ///< median request latency (submit -> done)
    double p99Us = 0.0;
};

/**
 * Synchronous request-queue serving runtime. Not thread-safe itself
 * (one producer); the parallelism lives inside drain().
 */
class ServingRuntime
{
  public:
    /**
     * @param net Network to serve (plans compile against it).
     * @param engine Precision-switch cache (must be built on @p net).
     * @param input_shape Per-request image shape [C, H, W...] (the
     *        trailing dims of every submitted batch).
     * @param cfg Serving configuration.
     */
    ServingRuntime(Network &net, RpsEngine &engine,
                   const std::vector<int> &input_shape,
                   ServeConfig cfg = ServeConfig());

    /**
     * Enqueue a request of x.dim(0) images; returns its id. A
     * malformed request — wrong rank, wrong image shape, empty, or
     * more rows than the serving-batch capacity — is rejected with
     * ServeError: nothing is enqueued, the rejection is counted
     * (ServeStats::rejected), and the runtime keeps serving.
     */
    size_t submit(Tensor x);

    /** Serve everything queued; blocks until all results are ready. */
    void drain();

    /** Logits of request @p id (valid after drain(), until
     * clearServed()). */
    const Tensor &result(size_t id) const;

    /**
     * Release the stored input and result tensors of every served
     * request (ids stay allocated; result() on a cleared id panics).
     * Long-lived submit/drain loops must call this after consuming
     * results — served requests are otherwise retained so their
     * results stay addressable.
     */
    void clearServed();

    /** Precisions sampled so far, one per served batch. */
    const std::vector<int> &precisionTrace() const { return trace_; }

    ServeStats stats() const;
    void resetStats();

    int numReplicas() const { return static_cast<int>(plans_.size()); }
    const ExecutionPlan &plan(int i) const { return *plans_[i]; }

  private:
    struct Request
    {
        Tensor x;
        Tensor y;
        std::chrono::steady_clock::time_point enqueued;
        double latencyUs = 0.0;
        bool done = false;
        bool cleared = false;
    };

    Network &net_;
    RpsEngine &engine_;
    ServeConfig cfg_;
    std::vector<int> rowShape_; ///< [1, C, H, W...]: one image
    std::vector<std::unique_ptr<ExecutionPlan>> plans_;
    Rng rng_;

    std::vector<Request> requests_;
    size_t nextToServe_ = 0;

    /** Per-row staging/scatter pointer tables: shards stage straight
     * from the request tensors and logits scatter straight back into
     * the request results — no packed batch or logit buffer between
     * (one copy per side instead of two). */
    std::vector<const float *> rowSrc_;
    std::vector<float *> rowDst_;
    std::vector<int> trace_;

    // Stats.
    uint64_t servedRequests_ = 0;
    uint64_t servedRows_ = 0;
    uint64_t servedBatches_ = 0;
    uint64_t rejected_ = 0;
    double wallSeconds_ = 0.0;
    /** Bounded-memory latency quantiles: soak runs add one sample per
     * request forever, so an exact sorted vector would grow without
     * limit; the sketch pins p50/p99 within its relative-error bound
     * at fixed memory. */
    QuantileSketch latencyUs_;

    /** Serve one packed batch of @p rows rows from requests
     * [first, last). */
    void serveBatch(size_t first, size_t last, int rows);
};

} // namespace serve
} // namespace twoinone

#endif // TWOINONE_SERVE_RUNTIME_HH
