/**
 * @file
 * twoinone::Session — the user-facing deployment facade.
 *
 * Before sessions, standing a trained RPS model up for serving took a
 * five-step caller ritual: construct the model, attach an RpsEngine,
 * run the Calibrator, compile plans / enablePlanExecution, wrap the
 * lot in a ServingRuntime. A Session is that wiring behind one
 * object:
 *
 *   auto s = Session::fromCheckpoint("model.ckpt");
 *   s.serve(requests);            // batched RPS serving
 *   s.predict(x);                 // plan-routed predictions
 *   s.switchPrecision(8);         // explicit precision control
 *   s.stats(); s.precisionTrace();
 *
 * Construction paths:
 *  - fromCheckpoint(path): rebuild the network from its persisted
 *    spec + state; when the artifact carries a serialized weight-code
 *    cache, the engine warm-starts from it — zero quantization passes
 *    before the first served batch.
 *  - fromNetwork(net): take ownership of an in-process model (e.g.
 *    fresh out of the Trainer) and wire the same stack.
 *  - attach(net): non-owning variant for callers that keep driving
 *    the network directly (the evaluation harness); the network's
 *    plan-execution routing is restored when the session dies.
 *
 * The underlying pieces stay reachable (network()/engine()) — the
 * facade narrows the default path, it does not wall off the internals.
 */

#ifndef TWOINONE_SERVE_SESSION_HH
#define TWOINONE_SERVE_SESSION_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "io/checkpoint.hh"
#include "nn/network.hh"
#include "quant/rps_engine.hh"
#include "serve/runtime.hh"
#include "tune/artifact.hh"

namespace twoinone {

/**
 * Session construction options.
 */
struct SessionConfig
{
    /** Serving-loop configuration (batch geometry, datapath mode,
     * sampling seed, replicas). lazyPlanWarmup defaults on for
     * sessions: cold start pays one structural pass instead of one
     * dry pass per candidate. */
    serve::ServeConfig serving = defaultServing();

    /** Per-request image shape [C, H, W...]; empty = derived from the
     * first submitted request. */
    std::vector<int> inputShape;

    /** Engine cache candidates; empty = the network's full bound
     * set. A non-empty set overrides a serialized code cache (the
     * cache is built fresh for the requested subset). */
    PrecisionSet cacheSet;

    /** Route predict()/forwardQuantized() through internally compiled
     * plans (bit-identical to the legacy loops). */
    bool planExecution = true;

    /** Warm-start the engine from a serialized code cache when the
     * checkpoint carries one. */
    bool restoreEngineCache = true;

    /** @name Streaming artifacts & cache budgets
     * streamArtifact makes fromCheckpoint() hydrate lazily: header +
     * directory + model state load eagerly, while engine code cells
     * (the dominant payload on ImageNet-class shapes) stay on disk
     * and fault in per (layer, precision) on first install — peak RSS
     * of a warm start drops from ~artifact size to ~model state plus
     * the resident cells. cacheBudgetBytes (0 = unlimited) caps the
     * engine cache with LRU-by-(layer, precision) eviction; evicted
     * cells rehydrate from the artifact (or re-quantize from the
     * masters), bit-identically. pinnedBits lists precisions never
     * evicted. The budget applies to session-owned engines on every
     * construction path; pinned precisions must be cached candidates. */
    /** @{ */
    bool streamArtifact = false;
    size_t cacheBudgetBytes = 0;
    std::vector<int> pinnedBits;
    /** @} */

    /** Auto-apply a checkpoint's tuning section (serving autotuner
     * winner) to the serving config: batch geometry, replicas,
     * precision draw distribution. The artifact stays readable via
     * tuningArtifact() either way (the async Server adopts the
     * server-scoped knobs — max delay, scheduling policy — from it). */
    bool applyTuning = true;

    /** @name Artifact-load resilience
     * fromCheckpoint() retries a failed parse/instantiate up to
     * loadRetries extra times (a transiently corrupt read — a racing
     * writer, flaky storage — often succeeds on the next attempt),
     * sleeping loadRetryBackoffMs doubled per attempt between tries.
     * Exhaustion rethrows the last io::CheckpointError — a
     * recoverable condition the caller can degrade on, never a
     * crash. onLoadRetry (when set) observes each failed attempt
     * (1-based) and its error before the backoff sleep — the scenario
     * harness journals these. */
    /** @{ */
    int loadRetries = 0;
    int loadRetryBackoffMs = 0;
    std::function<void(int attempt, const std::string &error)>
        onLoadRetry;
    /** @} */

    static serve::ServeConfig
    defaultServing()
    {
        serve::ServeConfig c;
        c.lazyPlanWarmup = true;
        return c;
    }
};

/**
 * A deployed RPS model: network + precision-switch engine + batched
 * serving runtime behind one facade. Movable, non-copyable.
 */
class Session
{
  public:
    /** Load a model artifact and wire the serving stack around it,
     * retrying per SessionConfig::loadRetries (throws
     * io::CheckpointError once the artifact stays malformed through
     * every attempt — recoverable, the process stays healthy). */
    static Session fromCheckpoint(const std::string &path,
                                  SessionConfig cfg = SessionConfig());

    /** Take ownership of @p net and wire the serving stack. */
    static Session fromNetwork(Network net,
                               SessionConfig cfg = SessionConfig());

    /** Wire the serving stack around a caller-owned network. The
     * network's plan-execution routing is restored on session
     * destruction; its active precision is left wherever the last
     * switch put it. */
    static Session attach(Network &net,
                          SessionConfig cfg = SessionConfig());

    /** attach() variant sharing a caller-owned engine instead of
     * building a fresh one: sessions multiplexed over one model by
     * serve::Server must share its weight-code cache (quantizing the
     * same weights once per tenant would duplicate the dominant
     * cold-start cost and double-install precisions). @p engine must
     * be built on @p net; it outlives the session. */
    static Session attach(Network &net, RpsEngine &engine,
                          SessionConfig cfg = SessionConfig());

    ~Session();
    Session(Session &&) noexcept;
    Session &operator=(Session &&) noexcept;
    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    /** @name Precision control */
    /** @{ */
    /** Switch the active precision through the engine cache
     * (O(#layers)); 0 = full precision. A precision outside the
     * model's bound set is caller data gone wrong, not a library
     * bug: the call throws serve::ServeError *before* touching the
     * engine, so the previously installed precision keeps serving
     * bit-identically. */
    void switchPrecision(int bits);
    /** Sample a candidate uniformly, switch to it, return it. */
    int switchRandom(Rng &rng);
    int activePrecision() const;
    /** The engine's candidate set. */
    const PrecisionSet &candidates() const { return eng().set(); }
    /** @} */

    /** @name Direct inference (active precision, plan-routed) */
    /** @{ */
    /** Logits on the float fake-quant datapath. */
    Tensor forward(const Tensor &x);
    /** Logits on the integer-code datapath. */
    Tensor forwardQuantized(const Tensor &x);
    std::vector<int> predict(const Tensor &x);
    std::vector<int> predictQuantized(const Tensor &x);
    /** @} */

    /** @name Batched RPS serving */
    /** @{ */
    /** Serve a burst of requests: submit all, drain, return each
     * request's logits in order. One random precision per serving
     * batch, drawn from the engine's candidate set. */
    std::vector<Tensor> serve(const std::vector<Tensor> &requests);
    /** Streaming variants (see serve::ServingRuntime). */
    size_t submit(Tensor x);
    void drain();
    const Tensor &result(size_t id) const;
    void clearServed();
    /** Precisions sampled so far, one per served batch (empty before
     * the first drain). */
    const std::vector<int> &precisionTrace() const;
    serve::ServeStats stats() const;
    /** @} */

    /** @name Calibration & persistence */
    /** @{ */
    /** Record activation ranges over @p batches and flip the model to
     * static-scale quantization (persisted by save()). */
    void calibrate(const std::vector<Tensor> &batches);
    /** Write the model artifact: arch spec, weights, BN banks,
     * calibration banks, and (by default) the engine code cache. When
     * the session carries a tuning artifact it is embedded too, so
     * save/load round-trips preserve the autotuned configuration. */
    void save(const std::string &path,
              bool include_engine_cache = true);
    /** save() variant with full control over the artifact sections
     * (engine packs, explicit tuning artifact, ...). */
    void save(const std::string &path,
              const checkpoint::SaveOptions &opts);
    /** @} */

    /** @name Escape hatches */
    /** @{ */
    Network &network() { return *net_; }
    RpsEngine &engine() { return eng(); }
    /** The construction-time configuration (the async Server reads
     * the serving geometry and input shape of its tenants). */
    const SessionConfig &config() const { return cfg_; }
    /** Whether the serving runtime has been instantiated (it builds
     * lazily on first serve). */
    bool servingStarted() const { return runtime_ != nullptr; }
    /** The tuning artifact this session loaded from its checkpoint
     * (null when the artifact had no tuning section or the session
     * was not checkpoint-built). */
    const tune::TuningArtifact *tuningArtifact() const
    {
        return tuning_.get();
    }
    /** Attach @p artifact to the session (persisted by save(); the
     * serving config is NOT re-derived — call tune::applyGenome
     * before the runtime builds to change live behavior). */
    void setTuningArtifact(const tune::TuningArtifact &artifact);
    /** @} */

  private:
    Session(std::unique_ptr<Network> owned, Network *net,
            SessionConfig cfg, std::unique_ptr<RpsEngine> engine,
            RpsEngine *shared_engine = nullptr);

    /** The precision engine in use: the shared caller-owned one when
     * attached with one, else the session-owned engine. */
    RpsEngine &eng() const
    {
        return extEngine_ != nullptr ? *extEngine_ : *engine_;
    }

    /** The serving runtime, built on first use (derives the request
     * shape from @p first when the config left it empty). */
    serve::ServingRuntime &runtime(const Tensor *first);

    /** Route the network's entry points through plans sized for
     * @p x (first call only; later shapes fall back gracefully). */
    void ensurePlans(const Tensor &x);

    SessionConfig cfg_;
    std::unique_ptr<Network> owned_; ///< null for attach()
    Network *net_ = nullptr;
    std::unique_ptr<RpsEngine> engine_;
    /** Non-owning shared engine (attach(net, engine)); when set,
     * engine_ stays null. */
    RpsEngine *extEngine_ = nullptr;
    std::unique_ptr<serve::ServingRuntime> runtime_;
    /** Tuning artifact carried by the loaded checkpoint (if any). */
    std::unique_ptr<tune::TuningArtifact> tuning_;

    /** attach(): the network's plan-routing state to restore. */
    bool restorePlanState_ = false;
    bool prevPlanExec_ = false;
    std::vector<int> prevPlanShape_;
};

} // namespace twoinone

#endif // TWOINONE_SERVE_SESSION_HH
