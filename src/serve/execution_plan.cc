/**
 * @file
 * ExecutionPlan implementation: builder plumbing, the compile walk
 * (with the SBN+ReLU fusion peephole), warm-up sizing, and the
 * allocation-free dispatch loop.
 */

#include "serve/execution_plan.hh"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "nn/activation.hh"
#include "nn/batchnorm.hh"
#include "nn/network.hh"

namespace twoinone {
namespace serve {

PlanMode
PlanBuilder::mode() const
{
    return plan_.mode();
}

int
PlanBuilder::newValue()
{
    plan_.values_.emplace_back();
    return static_cast<int>(plan_.values_.size()) - 1;
}

int
PlanBuilder::newScratch()
{
    plan_.scratch_.emplace_back();
    return static_cast<int>(plan_.scratch_.size()) - 1;
}

void
PlanBuilder::addStep(std::string label,
                     std::function<void(ExecutionPlan &)> fn)
{
    plan_.steps_.push_back({std::move(label), std::move(fn)});
}

void
PlanBuilder::markFallback()
{
    plan_.hasFallback_ = true;
}

Value &
ExecutionPlan::value(int id)
{
    TWOINONE_ASSERT(id >= 0 &&
                        static_cast<size_t>(id) < values_.size(),
                    "plan value id out of range");
    return values_[static_cast<size_t>(id)];
}

LayerScratch &
ExecutionPlan::scratch(int id)
{
    TWOINONE_ASSERT(id >= 0 &&
                        static_cast<size_t>(id) < scratch_.size(),
                    "plan scratch id out of range");
    return scratch_[static_cast<size_t>(id)];
}

const LayerScratch &
ExecutionPlan::scratchAt(int id) const
{
    TWOINONE_ASSERT(id >= 0 &&
                        static_cast<size_t>(id) < scratch_.size(),
                    "plan scratch id out of range");
    return scratch_[static_cast<size_t>(id)];
}

std::unique_ptr<ExecutionPlan>
ExecutionPlan::compile(Network &net, const PrecisionSet &precisions,
                       PlanMode mode,
                       const std::vector<int> &max_input_shape,
                       bool warm_all)
{
    TWOINONE_ASSERT(net.numLayers() > 0, "compiling an empty network");
    TWOINONE_ASSERT(!max_input_shape.empty() && max_input_shape[0] > 0,
                    "plan needs a max input shape with a batch dim");
    for (int bits : precisions.bits()) {
        TWOINONE_ASSERT(net.precisionSet().contains(bits),
                        "plan precision ", bits,
                        " not in the network's bound set ",
                        net.precisionSet().name());
    }

    std::unique_ptr<ExecutionPlan> plan(new ExecutionPlan());
    plan->mode_ = mode;
    plan->maxShape_ = max_input_shape;
    plan->values_.emplace_back(); // id 0: the external input
    plan->inputId_ = 0;

    PlanBuilder b(*plan);
    b.setTop(plan->inputId_);
    // The integer datapath quantizes the network input so the stem
    // conv consumes codes; the float path feeds the raw input.
    if (mode == PlanMode::Quantized)
        net.inputQuant().emitPlanSteps(b);
    for (size_t i = 0; i < net.numLayers(); ++i) {
        Layer *l = &net.layer(i);
        // Peephole: an SBN immediately followed by a ReLU runs as one
        // fused normalize+rectify pass (identical per-element
        // arithmetic, one buffer and one sweep saved).
        auto *bn = dynamic_cast<SwitchableBatchNorm2d *>(l);
        if (bn && i + 1 < net.numLayers() &&
            dynamic_cast<ReLU *>(&net.layer(i + 1)) != nullptr) {
            bn->emitFusedBnRelu(b);
            ++i;
            continue;
        }
        l->emitPlanSteps(b);
    }
    plan->outputId_ = b.top();

    // Warm-up: one dry pass at full precision and at every candidate
    // sizes each arena buffer to its high-water mark, so real
    // forwards allocate nothing. The dry input is all zeros (buffer
    // shapes are data-independent); the active precision is restored.
    // Lazy mode (!warm_all) keeps only the full-precision structural
    // pass — candidates size their buffers on first serve instead,
    // trading first-run allocations for cold-start latency.
    int restore = net.activePrecision();
    Tensor dummy(max_input_shape);
    net.setPrecision(0);
    plan->run(dummy);
    if (warm_all) {
        for (int bits : precisions.bits()) {
            net.setPrecision(bits);
            plan->run(dummy);
        }
    }
    net.setPrecision(restore);
    plan->outShape_ = plan->value(plan->outputId_).denseView().shape();
    return plan;
}

void
ExecutionPlan::execute()
{
    for (Value &v : values_)
        v.reset();
    values_[static_cast<size_t>(inputId_)].alias = input_;
    for (Step &s : steps_)
        s.fn(*this);
}

const Tensor &
ExecutionPlan::run(const Tensor &x)
{
    TWOINONE_ASSERT(x.ndim() == static_cast<int>(maxShape_.size()),
                    "plan input rank mismatch");
    TWOINONE_ASSERT(x.dim(0) > 0 && x.dim(0) <= maxShape_[0],
                    "plan batch ", x.dim(0), " exceeds compiled max ",
                    maxShape_[0]);
    for (size_t i = 1; i < maxShape_.size(); ++i) {
        TWOINONE_ASSERT(x.dim(static_cast<int>(i)) ==
                            maxShape_[i],
                        "plan input dim ", i, " mismatch");
    }
    input_ = &x;
    execute();
    return values_[static_cast<size_t>(outputId_)].denseView();
}

const Tensor &
ExecutionPlan::runStaged(const float *const *rows, int nrows,
                         size_t row_elems)
{
    TWOINONE_ASSERT(nrows > 0 && nrows <= maxShape_[0],
                    "staged batch ", nrows, " exceeds compiled max ",
                    maxShape_[0]);
    size_t expect = 1;
    for (size_t i = 1; i < maxShape_.size(); ++i)
        expect *= static_cast<size_t>(maxShape_[i]);
    TWOINONE_ASSERT(row_elems == expect,
                    "staged row size mismatches the compiled shape");
    std::vector<int> shape = maxShape_;
    shape[0] = nrows;
    stage_.ensure(shape);
    for (int t = 0; t < nrows; ++t)
        std::copy(rows[t], rows[t] + row_elems,
                  stage_.data() + static_cast<size_t>(t) * row_elems);
    return run(stage_);
}

const Tensor &
ExecutionPlan::runRows(const Tensor &batch, int row_lo, int row_hi)
{
    TWOINONE_ASSERT(batch.ndim() >= 1 && row_lo >= 0 &&
                        row_lo < row_hi && row_hi <= batch.dim(0),
                    "plan row range [", row_lo, ",", row_hi,
                    ") out of batch ", batch.dim(0));
    std::vector<int> shape = batch.shape();
    shape[0] = row_hi - row_lo;
    stage_.ensure(shape);
    size_t stride = batch.size() / static_cast<size_t>(batch.dim(0));
    std::copy(batch.data() + static_cast<size_t>(row_lo) * stride,
              batch.data() + static_cast<size_t>(row_hi) * stride,
              stage_.data());
    return run(stage_);
}

std::vector<std::pair<std::string, double>>
ExecutionPlan::profileSteps(const Tensor &x, int reps)
{
    using Clock = std::chrono::steady_clock;
    std::vector<std::pair<std::string, double>> out;
    for (const Step &s : steps_)
        out.emplace_back(s.label, 0.0);
    input_ = &x;
    for (int r = 0; r < reps; ++r) {
        for (Value &v : values_)
            v.reset();
        values_[static_cast<size_t>(inputId_)].alias = input_;
        for (size_t i = 0; i < steps_.size(); ++i) {
            auto t0 = Clock::now();
            steps_[i].fn(*this);
            out[i].second +=
                std::chrono::duration<double, std::micro>(Clock::now() -
                                                          t0)
                    .count();
        }
    }
    for (auto &e : out)
        e.second /= static_cast<double>(reps);
    return out;
}

std::string
ExecutionPlan::describe() const
{
    std::ostringstream oss;
    oss << (mode_ == PlanMode::Quantized ? "quantized" : "float")
        << " plan, " << steps_.size() << " steps, " << values_.size()
        << " values:\n";
    for (const Step &s : steps_)
        oss << "  " << s.label << "\n";
    return oss.str();
}

size_t
ExecutionPlan::arenaBytes() const
{
    size_t bytes = stage_.size() * sizeof(float);
    for (const Value &v : values_)
        bytes += v.dense.size() * sizeof(float) + v.q.bytes();
    for (const LayerScratch &s : scratch_) {
        bytes += s.t0.size() * sizeof(float);
        bytes += s.wq.values.size() * sizeof(float) +
                 s.wq.steMask.size() * sizeof(float);
        bytes += s.wcodes.bytes();
        bytes += s.ig.w8.size() * sizeof(int8_t) +
                 s.ig.w16.size() * sizeof(int16_t) +
                 s.ig.a8.size() * sizeof(uint8_t) +
                 s.ig.a16.size() * sizeof(uint16_t) +
                 s.ig.acc.size() * sizeof(int64_t);
        bytes += s.ig.wpack.bytes() +
                 s.ig.wide16.size() * sizeof(uint16_t);
    }
    return bytes;
}

} // namespace serve
} // namespace twoinone
