/**
 * @file
 * Compiled execution plans: the serving datapath behind all of the
 * network's inference entry points.
 *
 * A Network is compiled once per (mode, max input shape) into an
 * ExecutionPlan — a flat list of steps (input quantize, int im2col +
 * igemm + fused dequant/bias, fused BN/ReLU, activation quantize,
 * pool, residual join, classifier GEMM) over a preallocated arena of
 * activation values and per-layer scratch buffers. Executing a plan
 * performs *zero tensor allocations*: every buffer is sized during
 * compile()'s warm-up dry runs (one per candidate precision) and
 * reused across forwards; Tensor::allocationCount() pins the contract
 * in tests.
 *
 * Every step runs the exact same kernels as the legacy per-layer
 * loops (Network::forward at eval, Network::forwardQuantized) — the
 * layers' *Into refactors are shared between both paths — so a plan
 * forward is bit-identical to the legacy forward at every candidate
 * precision, cached or uncached. Precision state is read live from
 * the layers at execution time: RpsEngine::setPrecision() between
 * runs switches the plan with no recompilation.
 *
 * A plan instance is not thread-safe (one arena); the serving runtime
 * (serve/runtime.hh) compiles one replica per worker and runs them
 * concurrently over read-only layer state.
 */

#ifndef TWOINONE_SERVE_EXECUTION_PLAN_HH
#define TWOINONE_SERVE_EXECUTION_PLAN_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "nn/layer.hh"
#include "quant/linear_quantizer.hh"
#include "quant/quant_tensor.hh"
#include "tensor/tensor.hh"

namespace twoinone {

class Network;
class PrecisionSet;

namespace serve {

class ExecutionPlan;

/** Which forward path a plan compiles. */
enum class PlanMode {
    /** The float fake-quant datapath (Network::forward at eval). */
    Float,
    /** The integer-code datapath (Network::forwardQuantized). */
    Quantized,
};

/**
 * An arena-resident activation value: integer codes and/or a float
 * view, mirroring QuantAct but with persistent storage. Steps write
 * codes (hasCodes) or dense (denseReady) or alias another tensor
 * (pass-through and the external input); denseView() materializes
 * the float view from the codes on demand, into arena storage.
 */
struct Value
{
    /** External tensor this value aliases (input / pass-through). */
    const Tensor *alias = nullptr;
    Tensor dense;
    QuantTensor q;
    bool hasCodes = false;
    bool denseReady = false;

    const Tensor &
    denseView()
    {
        if (alias)
            return *alias;
        if (!denseReady && hasCodes) {
            q.dequantizeInto(dense);
            denseReady = true;
        }
        return dense;
    }

    /** Reset per run (storage is retained). */
    void
    reset()
    {
        alias = nullptr;
        hasCodes = false;
        denseReady = false;
    }
};

/**
 * Per-emitted-layer scratch: im2col columns, packed integer operands,
 * accumulators, and the uncached-weight fallback buffers. Allocated
 * once at compile, reused every forward.
 */
struct LayerScratch
{
    Tensor t0;          ///< float scratch (im2col columns)
    QuantResult wq;     ///< uncached weight fake-quant fallback
    QuantTensor wcodes; ///< uncached weight codes fallback
    IntGemmScratch ig;  ///< packed integer operands + accumulators
};

/**
 * Step-emission interface handed to Layer::emitPlanSteps. Tracks the
 * "current" value id flowing through the (mostly sequential) graph;
 * composite layers fork and join ids explicitly.
 */
class PlanBuilder
{
  public:
    explicit PlanBuilder(ExecutionPlan &plan) : plan_(plan) {}

    PlanMode mode() const;

    /** Id of the value feeding the next layer. */
    int top() const { return top_; }
    void setTop(int id) { top_ = id; }

    /** Allocate a fresh arena value. */
    int newValue();

    /** Allocate a per-layer scratch block. */
    int newScratch();

    /** Append a step. @p fn receives the executing plan; it must
     * perform no tensor allocations in the steady state. */
    void addStep(std::string label,
                 std::function<void(ExecutionPlan &)> fn);

    /** Mark the plan as containing a legacy-fallback step (the
     * default Layer emitter): such steps run the stateful layer
     * forward, so replicas of this plan must not execute
     * concurrently. */
    void markFallback();

  private:
    ExecutionPlan &plan_;
    int top_ = 0;
};

/**
 * The compiled plan: steps + arena. Compile through Network::compile.
 */
class ExecutionPlan
{
  public:
    ExecutionPlan(const ExecutionPlan &) = delete;
    ExecutionPlan &operator=(const ExecutionPlan &) = delete;

    /**
     * Compile @p net for @p mode with buffers sized for
     * @p max_input_shape ([N, C, H, W] of the largest batch). With
     * @p warm_all (the default), runs one warm-up dry pass per
     * candidate in @p precisions (plus full precision) so every arena
     * buffer reaches its high-water size before the first real
     * forward; with it off, only the full-precision structural pass
     * runs (shape discovery) and each candidate's buffers grow on its
     * first real run instead — the lazy-compilation mode that cuts
     * cold-start latency for large candidate sets (the zero-allocation
     * steady state is reached per precision after its first serve).
     * The network's active precision is restored on return.
     */
    static std::unique_ptr<ExecutionPlan>
    compile(Network &net, const PrecisionSet &precisions, PlanMode mode,
            const std::vector<int> &max_input_shape,
            bool warm_all = true);

    /**
     * Execute the plan on @p x (x.dim(0) <= maxBatch(), trailing dims
     * must match the compiled shape) at the network's currently
     * active precision. Returns the logits, resident in the arena —
     * valid until the next run on this plan.
     */
    const Tensor &run(const Tensor &x);

    /** Execute on rows [row_lo, row_hi) of @p batch (staged into the
     * arena) — the micro-batch entry point over one packed tensor. */
    const Tensor &runRows(const Tensor &batch, int row_lo, int row_hi);

    /**
     * Execute on @p nrows rows gathered straight from caller-owned
     * row pointers (each @p row_elems floats) — the serving runtime's
     * zero-intermediate entry point: request tensors stage directly
     * into the plan arena with no packed batch buffer in between.
     */
    const Tensor &runStaged(const float *const *rows, int nrows,
                            size_t row_elems);

    PlanMode mode() const { return mode_; }
    int maxBatch() const { return maxShape_[0]; }
    const std::vector<int> &maxInputShape() const { return maxShape_; }
    const std::vector<int> &outputShape() const { return outShape_; }
    size_t numSteps() const { return steps_.size(); }

    /** One line per step (diagnostics). */
    std::string describe() const;

    /** Mean wall microseconds per step over @p reps runs of @p x
     * (diagnostics; labels match describe()). */
    std::vector<std::pair<std::string, double>>
    profileSteps(const Tensor &x, int reps);

    /** Bytes held by the arena values and scratch blocks. */
    size_t arenaBytes() const;

    /** Whether any step runs a stateful legacy layer forward (a
     * layer without an allocation-free emitter). Such plans are
     * correct single-threaded but their replicas must not run
     * concurrently over the shared layers. */
    bool hasFallbackSteps() const { return hasFallback_; }

    /** @name Step-execution accessors (used by emitted closures) */
    /** @{ */
    Value &value(int id);
    LayerScratch &scratch(int id);
    /** @} */

    /** @name Arena introspection (tests/diagnostics) */
    /** @{ */
    size_t numScratch() const { return scratch_.size(); }
    const LayerScratch &scratchAt(int id) const;
    /** @} */

  private:
    friend class PlanBuilder;

    ExecutionPlan() = default;

    struct Step
    {
        std::string label;
        std::function<void(ExecutionPlan &)> fn;
    };

    void execute();

    PlanMode mode_ = PlanMode::Float;
    std::vector<int> maxShape_;
    std::vector<int> outShape_;
    std::vector<Step> steps_;
    /** Deques keep element addresses stable while emitters append. */
    std::deque<Value> values_;
    std::deque<LayerScratch> scratch_;
    Tensor stage_;   ///< runRows staging buffer
    int inputId_ = 0;
    int outputId_ = 0;
    const Tensor *input_ = nullptr;
    bool hasFallback_ = false;
};

} // namespace serve
} // namespace twoinone

#endif // TWOINONE_SERVE_EXECUTION_PLAN_HH
