/**
 * @file
 * Session implementation.
 */

#include "serve/session.hh"

#include <chrono>
#include <new>
#include <thread>

#include "io/checkpoint.hh"
#include "quant/calibration.hh"
#include "tune/autotuner.hh"

namespace twoinone {

namespace {

/** The engine cache set a session config asks for: the explicit
 * subset when given, else the network's full bound set. */
PrecisionSet
engineSet(const SessionConfig &cfg, const Network &net)
{
    return cfg.cacheSet.empty() ? net.precisionSet() : cfg.cacheSet;
}

/** Retry-with-backoff around an artifact open/parse: transient
 * corruption (a racing writer, flaky storage) often clears on the
 * next attempt; persistent corruption exhausts the budget and
 * surfaces the last CheckpointError to the caller — recoverable,
 * never a crash. */
template <typename Fn>
auto
loadWithRetries(const SessionConfig &cfg, Fn &&fn) -> decltype(fn())
{
    int attempts = 1 + std::max(0, cfg.loadRetries);
    for (int a = 1;; ++a) {
        try {
            return fn();
        } catch (const io::CheckpointError &e) {
            if (a >= attempts)
                throw;
            if (cfg.onLoadRetry)
                cfg.onLoadRetry(a, e.what());
            if (cfg.loadRetryBackoffMs > 0) {
                std::this_thread::sleep_for(std::chrono::milliseconds(
                    cfg.loadRetryBackoffMs << (a - 1)));
            }
        }
    }
}

} // namespace

Session::Session(std::unique_ptr<Network> owned, Network *net,
                 SessionConfig cfg, std::unique_ptr<RpsEngine> engine,
                 RpsEngine *shared_engine)
    : cfg_(std::move(cfg)), owned_(std::move(owned)), net_(net),
      engine_(std::move(engine)), extEngine_(shared_engine)
{
    TWOINONE_ASSERT(net_ != nullptr, "session needs a network");
    TWOINONE_ASSERT(!net_->precisionSet().empty(),
                    "session needs an RPS-capable network "
                    "(non-empty precision set)");
    TWOINONE_ASSERT(extEngine_ == nullptr || engine_ == nullptr,
                    "a session holds one engine: owned or shared");
    if (!engine_ && extEngine_ == nullptr)
        engine_ = std::make_unique<RpsEngine>(*net_,
                                              engineSet(cfg_, *net_));
    // Byte budget / pins apply to the session-owned engine on every
    // construction path (a shared engine's policy belongs to its
    // owner). A pinned precision outside the cache set is caller data
    // gone wrong — reject it here instead of panicking in the engine.
    if (engine_ &&
        (cfg_.cacheBudgetBytes > 0 || !cfg_.pinnedBits.empty())) {
        for (int b : cfg_.pinnedBits) {
            if (!engine_->set().contains(b))
                throw serve::ServeError(formatMessage(
                    "pinned precision ", b,
                    " is not in the engine cache set ",
                    engine_->set().name()));
        }
        EngineCacheConfig ec;
        ec.budgetBytes = cfg_.cacheBudgetBytes;
        ec.pinnedBits = cfg_.pinnedBits;
        engine_->setCacheConfig(std::move(ec));
    }
    if (owned_ == nullptr) {
        restorePlanState_ = true;
        prevPlanExec_ = net_->planExecutionEnabled();
        prevPlanShape_ = net_->planMaxShape();
    }
}

Session::~Session()
{
    if (net_ != nullptr && restorePlanState_) {
        // Engine caches detach through engine_'s destructor; routing
        // goes back to whatever the owner had configured.
        if (prevPlanExec_)
            net_->enablePlanExecution(prevPlanShape_);
        else
            net_->disablePlanExecution();
    }
}

Session::Session(Session &&other) noexcept
    : cfg_(std::move(other.cfg_)), owned_(std::move(other.owned_)),
      net_(other.net_), engine_(std::move(other.engine_)),
      extEngine_(other.extEngine_),
      runtime_(std::move(other.runtime_)),
      tuning_(std::move(other.tuning_)),
      restorePlanState_(other.restorePlanState_),
      prevPlanExec_(other.prevPlanExec_),
      prevPlanShape_(std::move(other.prevPlanShape_))
{
    // The moved-from session must not restore the attached network's
    // routing when it dies — that duty moved here.
    other.net_ = nullptr;
    other.restorePlanState_ = false;
}

Session &
Session::operator=(Session &&other) noexcept
{
    if (this != &other) {
        this->~Session();
        new (this) Session(std::move(other));
    }
    return *this;
}

Session
Session::fromCheckpoint(const std::string &path, SessionConfig cfg)
{
    if (cfg.streamArtifact) {
        // Streaming load: header + directory + model state hydrate
        // eagerly (inside the retry budget — that is where framing
        // corruption surfaces); the engine code cells stay on disk
        // and fault in per (layer, precision) on first install.
        auto sckpt = loadWithRetries(cfg, [&] {
            return std::make_shared<checkpoint::StreamingCheckpoint>(
                path);
        });
        if (sckpt->spec().precisions.empty())
            throw io::CheckpointError(
                path +
                " holds a model with no candidate precision set — "
                "not servable through a Session");
        auto net = std::make_unique<Network>(sckpt->instantiate());
        std::unique_ptr<tune::TuningArtifact> tuning;
        if (sckpt->tuning() != nullptr) {
            tuning =
                std::make_unique<tune::TuningArtifact>(*sckpt->tuning());
            if (cfg.applyTuning)
                tune::applyGenome(tuning->genome, cfg.serving);
        }
        std::unique_ptr<RpsEngine> engine;
        if (cfg.restoreEngineCache && cfg.cacheSet.empty())
            engine = checkpoint::StreamingCheckpoint::restoreEngine(
                sckpt, *net);
        Network *raw = net.get();
        Session s(std::move(net), raw, std::move(cfg),
                  std::move(engine));
        s.tuning_ = std::move(tuning);
        return s;
    }
    checkpoint::Checkpoint ckpt = loadWithRetries(
        cfg, [&] { return checkpoint::Checkpoint::read(path); });
    // Sessions require an RPS-capable model; the constructor treats a
    // precision-less network as a caller bug (panic), but here the
    // network comes from the artifact — recoverable input.
    if (ckpt.spec().precisions.empty())
        throw io::CheckpointError(
            path + " holds a model with no candidate precision set — "
                   "not servable through a Session");
    auto net = std::make_unique<Network>(ckpt.instantiate());
    // A tuning section carries the serving autotuner's winner: copy
    // it out before the checkpoint's cells move into the engine, and
    // (by default) apply its session-scoped knobs to the serving
    // config before the runtime ever builds.
    std::unique_ptr<tune::TuningArtifact> tuning;
    if (ckpt.tuning() != nullptr) {
        tuning = std::make_unique<tune::TuningArtifact>(*ckpt.tuning());
        if (cfg.applyTuning)
            tune::applyGenome(tuning->genome, cfg.serving);
    }
    std::unique_ptr<RpsEngine> engine;
    // A serialized code cache warm-starts the engine — unless the
    // caller asked for a different candidate subset, which the
    // artifact's full-set cache does not represent. The checkpoint is
    // local and dies here, so the cells move instead of copying.
    if (cfg.restoreEngineCache && cfg.cacheSet.empty())
        engine = std::move(ckpt).restoreEngine(*net);
    Network *raw = net.get();
    Session s(std::move(net), raw, std::move(cfg),
              std::move(engine));
    s.tuning_ = std::move(tuning);
    return s;
}

Session
Session::fromNetwork(Network net, SessionConfig cfg)
{
    auto owned = std::make_unique<Network>(std::move(net));
    Network *raw = owned.get();
    return Session(std::move(owned), raw, std::move(cfg), nullptr);
}

Session
Session::attach(Network &net, SessionConfig cfg)
{
    return Session(nullptr, &net, std::move(cfg), nullptr);
}

Session
Session::attach(Network &net, RpsEngine &engine, SessionConfig cfg)
{
    TWOINONE_ASSERT(&engine.network() == &net,
                    "shared engine must be built on the attached "
                    "network");
    return Session(nullptr, &net, std::move(cfg), nullptr, &engine);
}

void
Session::switchPrecision(int bits)
{
    // Reject before touching the engine: Network::setPrecision treats
    // an out-of-set precision as a library bug (panic), but at the
    // session boundary it is caller data — the installed precision
    // must keep serving bit-identically after the rejection.
    if (bits != 0 && !net_->precisionSet().contains(bits))
        throw serve::ServeError(formatMessage(
            "rejected precision switch: ", bits,
            " is not in the model's bound set ",
            net_->precisionSet().name()));
    eng().setPrecision(bits);
}

int
Session::switchRandom(Rng &rng)
{
    int bits = eng().samplePrecision(rng);
    switchPrecision(bits);
    return bits;
}

int
Session::activePrecision() const
{
    return eng().activePrecision();
}

void
Session::ensurePlans(const Tensor &x)
{
    if (!cfg_.planExecution || net_->planExecutionEnabled())
        return;
    net_->enablePlanExecution(x.shape());
}

Tensor
Session::forward(const Tensor &x)
{
    ensurePlans(x);
    return net_->forward(x, /*train=*/false);
}

Tensor
Session::forwardQuantized(const Tensor &x)
{
    ensurePlans(x);
    return net_->forwardQuantized(x);
}

std::vector<int>
Session::predict(const Tensor &x)
{
    ensurePlans(x);
    return net_->predict(x);
}

std::vector<int>
Session::predictQuantized(const Tensor &x)
{
    ensurePlans(x);
    return net_->predictQuantized(x);
}

serve::ServingRuntime &
Session::runtime(const Tensor *first)
{
    if (!runtime_) {
        std::vector<int> shape = cfg_.inputShape;
        if (shape.empty()) {
            TWOINONE_ASSERT(first != nullptr && first->ndim() > 1,
                            "session needs a request image shape "
                            "(SessionConfig::inputShape or a first "
                            "submitted batch)");
            for (int i = 1; i < first->ndim(); ++i)
                shape.push_back(first->dim(i));
        }
        runtime_ = std::make_unique<serve::ServingRuntime>(
            *net_, eng(), shape, cfg_.serving);
    }
    return *runtime_;
}

size_t
Session::submit(Tensor x)
{
    return runtime(&x).submit(std::move(x));
}

void
Session::drain()
{
    TWOINONE_ASSERT(runtime_ != nullptr,
                    "drain() before any submit()");
    runtime_->drain();
}

const Tensor &
Session::result(size_t id) const
{
    TWOINONE_ASSERT(runtime_ != nullptr,
                    "result() before any submit()");
    return runtime_->result(id);
}

void
Session::clearServed()
{
    if (runtime_)
        runtime_->clearServed();
}

std::vector<Tensor>
Session::serve(const std::vector<Tensor> &requests)
{
    if (requests.empty())
        return {}; // nothing submitted — there may be no runtime yet
    std::vector<size_t> ids;
    ids.reserve(requests.size());
    for (const Tensor &x : requests)
        ids.push_back(submit(x));
    drain();
    std::vector<Tensor> out;
    out.reserve(ids.size());
    for (size_t id : ids)
        out.push_back(runtime_->result(id));
    runtime_->clearServed();
    return out;
}

const std::vector<int> &
Session::precisionTrace() const
{
    static const std::vector<int> empty;
    return runtime_ ? runtime_->precisionTrace() : empty;
}

serve::ServeStats
Session::stats() const
{
    return runtime_ ? runtime_->stats() : serve::ServeStats();
}

void
Session::calibrate(const std::vector<Tensor> &batches)
{
    Calibrator cal(*net_);
    cal.calibrate(batches);
}

void
Session::save(const std::string &path, bool include_engine_cache)
{
    checkpoint::SaveOptions opts;
    opts.includeEngineCache = include_engine_cache;
    opts.tuning = tuning_.get(); // round-trips survive by default
    checkpoint::save(path, *net_, &eng(), opts);
}

void
Session::save(const std::string &path,
              const checkpoint::SaveOptions &opts)
{
    checkpoint::save(path, *net_, &eng(), opts);
}

void
Session::setTuningArtifact(const tune::TuningArtifact &artifact)
{
    tuning_ = std::make_unique<tune::TuningArtifact>(artifact);
}

} // namespace twoinone
