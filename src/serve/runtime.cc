/**
 * @file
 * BatchExecutor + ServingRuntime implementation.
 */

#include "serve/runtime.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace twoinone {
namespace serve {

namespace {

using SClock = std::chrono::steady_clock;

double
microseconds(SClock::time_point from, SClock::time_point to)
{
    return std::chrono::duration<double, std::micro>(to - from).count();
}

} // namespace

BatchExecutor::BatchExecutor(Network &net, RpsEngine &engine,
                             const std::vector<int> &input_shape,
                             ServeConfig cfg)
    : net_(net), engine_(engine), cfg_(cfg)
{
    TWOINONE_ASSERT(cfg_.maxBatch > 0 && cfg_.microBatch > 0,
                    "bad serving batch geometry");
    TWOINONE_ASSERT(!input_shape.empty(),
                    "serving needs a per-request image shape");
    cfg_.microBatch = std::min(cfg_.microBatch, cfg_.maxBatch);
    rowShape_.push_back(1);
    rowShape_.insert(rowShape_.end(), input_shape.begin(),
                     input_shape.end());
    rowElems_ = 1;
    for (size_t i = 1; i < rowShape_.size(); ++i)
        rowElems_ *= static_cast<size_t>(rowShape_[i]);

    // One plan replica per concurrent shard worker (each runs its
    // shards on its own arena); sized for one micro-batch. More
    // replicas than a batch has shards could never execute
    // concurrently, so the default clamps to the shard count.
    int max_shards =
        (cfg_.maxBatch + cfg_.microBatch - 1) / cfg_.microBatch;
    int replicas =
        cfg_.replicas > 0
            ? cfg_.replicas
            : std::min(ThreadPool::global().threads(), max_shards);
    replicas = std::max(1, replicas);
    for (int i = 0; i < replicas; ++i) {
        std::vector<int> plan_shape = rowShape_;
        plan_shape[0] = cfg_.microBatch;
        plans_.push_back(net_.compile(engine_.set(), cfg_.mode,
                                      plan_shape,
                                      !cfg_.lazyPlanWarmup));
        if (i == 0 && plans_[0]->hasFallbackSteps()) {
            // A fallback step runs the stateful legacy layer forward;
            // replicas of such a plan must not execute concurrently
            // over the shared layers, so serve single-replica.
            break;
        }
    }

    const std::vector<int> &oshape = plans_[0]->outputShape();
    outCols_ = 1;
    for (size_t i = 1; i < oshape.size(); ++i)
        outCols_ *= static_cast<size_t>(oshape[i]);

    // Precision-distribution policy: precompute the cumulative draw
    // table once so each batch draw is one uniform + one scan.
    if (!cfg_.drawBits.empty()) {
        TWOINONE_ASSERT(cfg_.drawWeights.empty() ||
                            cfg_.drawWeights.size() ==
                                cfg_.drawBits.size(),
                        "drawWeights must be empty or parallel to "
                        "drawBits");
        double acc = 0.0;
        for (size_t i = 0; i < cfg_.drawBits.size(); ++i) {
            TWOINONE_ASSERT(engine_.set().contains(cfg_.drawBits[i]),
                            "drawBits ", cfg_.drawBits[i],
                            " is not in the engine's candidate set ",
                            engine_.set().name());
            double w = cfg_.drawWeights.empty()
                           ? 1.0
                           : static_cast<double>(cfg_.drawWeights[i]);
            TWOINONE_ASSERT(w > 0.0, "draw weight must be positive");
            acc += w;
            drawCum_.push_back(acc);
        }
    }
}

int
BatchExecutor::samplePrecision(Rng &rng) const
{
    if (drawCum_.empty())
        return engine_.samplePrecision(rng);
    double u = rng.uniform(0.0, drawCum_.back());
    size_t i = 0;
    while (i + 1 < drawCum_.size() && u >= drawCum_[i])
        ++i;
    return cfg_.drawBits[i];
}

void
BatchExecutor::validate(const Tensor &x) const
{
    if (x.ndim() != static_cast<int>(rowShape_.size()))
        throw ServeError(formatMessage(
            "rejected request: rank ", x.ndim(), " != expected ",
            rowShape_.size()));
    for (size_t i = 1; i < rowShape_.size(); ++i) {
        if (x.dim(static_cast<int>(i)) != rowShape_[i]) {
            throw ServeError(formatMessage(
                "rejected request: image dim ", i, " is ",
                x.dim(static_cast<int>(i)), ", expected ",
                rowShape_[i]));
        }
    }
    if (x.dim(0) <= 0 || x.dim(0) > cfg_.maxBatch)
        throw ServeError(formatMessage(
            "rejected request: batch ", x.dim(0),
            " exceeds the serving batch capacity ", cfg_.maxBatch));
}

void
BatchExecutor::execute(const float *const *row_src,
                       float *const *row_dst, int rows)
{
    TWOINONE_ASSERT(rows > 0 && rows <= cfg_.maxBatch,
                    "batch of ", rows, " rows outside (0, ",
                    cfg_.maxBatch, "]");

    // Shard across the pool: the shards are dealt to at most
    // numReplicas() worker groups, each group running its shards on
    // its own plan replica and writing disjoint logit rows. Shard
    // boundaries depend only on microBatch, so outputs are identical
    // for any thread count or replica count.
    int mb = cfg_.microBatch;
    int nshards = (rows + mb - 1) / mb;
    int ngroups = std::min(nshards, numReplicas());
    size_t out_cols = outCols_;
    size_t row_elems = rowElems_;

    std::atomic<int> plan_cursor{0};
    ThreadPool::global().parallelFor(
        0, ngroups, 1, [&](int64_t glo, int64_t ghi) {
            int pid = plan_cursor.fetch_add(1);
            TWOINONE_ASSERT(pid < static_cast<int>(plans_.size()),
                            "more worker chunks than plan replicas");
            ExecutionPlan &plan = *plans_[static_cast<size_t>(pid)];
            for (int64_t g = glo; g < ghi; ++g) {
                for (int s = static_cast<int>(g); s < nshards;
                     s += ngroups) {
                    int row_lo = s * mb;
                    int row_hi = std::min(rows, row_lo + mb);
                    const Tensor &logits = plan.runStaged(
                        &row_src[static_cast<size_t>(row_lo)],
                        row_hi - row_lo, row_elems);
                    for (int t = 0; t < row_hi - row_lo; ++t) {
                        const float *src =
                            logits.data() +
                            static_cast<size_t>(t) * out_cols;
                        std::copy(
                            src, src + out_cols,
                            row_dst[static_cast<size_t>(row_lo + t)]);
                    }
                }
            }
        });
}

ServingRuntime::ServingRuntime(Network &net, RpsEngine &engine,
                               const std::vector<int> &input_shape,
                               ServeConfig cfg)
    : exec_(net, engine, input_shape, cfg), rng_(cfg.seed)
{
}

size_t
ServingRuntime::submit(Tensor x)
{
    // Request validation failures are caller data, not library bugs:
    // reject the request, count it, keep serving.
    try {
        exec_.validate(x);
    } catch (const ServeError &) {
        ++rejected_;
        throw;
    }
    Request r;
    r.x = std::move(x);
    r.enqueued = SClock::now();
    requests_.push_back(std::move(r));
    return requests_.size() - 1;
}

void
ServingRuntime::serveBatch(size_t first, size_t last, int rows)
{
    // One precision draw per serving batch (paper Alg. 1 line 16),
    // installed from the engine's code cache: O(#layers).
    int bits = exec_.samplePrecision(rng_);
    trace_.push_back(bits);
    exec_.installPrecision(bits);

    // Per-row staging/scatter tables pointing straight at the request
    // tensors: shards gather their input rows from these pointers
    // into the plan arena, and scatter their logit rows directly into
    // the pre-sized request results — one copy per side, with no
    // packed batch or logit buffer in between.
    size_t row_elems = exec_.rowElems();
    size_t out_cols = exec_.outCols();
    rowSrc_.resize(static_cast<size_t>(rows));
    rowDst_.resize(static_cast<size_t>(rows));
    {
        size_t row = 0;
        for (size_t r = first; r < last; ++r) {
            Request &req = requests_[r];
            int n = req.x.dim(0);
            req.y.ensure({n, static_cast<int>(out_cols)});
            for (int i = 0; i < n; ++i) {
                rowSrc_[row] = req.x.data() +
                               static_cast<size_t>(i) * row_elems;
                rowDst_[row] = req.y.data() +
                               static_cast<size_t>(i) * out_cols;
                ++row;
            }
        }
    }

    exec_.execute(rowSrc_.data(), rowDst_.data(), rows);

    // Stamp latencies and serving stats.
    SClock::time_point done = SClock::now();
    for (size_t r = first; r < last; ++r) {
        Request &req = requests_[r];
        req.latencyUs = microseconds(req.enqueued, done);
        req.done = true;
        latencyUs_.add(req.latencyUs);
        ++servedRequests_;
        servedRows_ += static_cast<uint64_t>(req.x.dim(0));
    }
    ++servedBatches_;
}

void
ServingRuntime::drain()
{
    SClock::time_point start = SClock::now();
    while (nextToServe_ < requests_.size()) {
        // Pack whole requests until the serving batch is full.
        size_t first = nextToServe_;
        int rows = 0;
        size_t last = first;
        while (last < requests_.size() &&
               rows + requests_[last].x.dim(0) <= exec_.maxBatch()) {
            rows += requests_[last].x.dim(0);
            ++last;
        }
        // A single over-sized request cannot occur (submit caps at
        // maxBatch), so last > first here.
        serveBatch(first, last, rows);
        nextToServe_ = last;
    }
    wallSeconds_ +=
        std::chrono::duration<double>(SClock::now() - start).count();
}

const Tensor &
ServingRuntime::result(size_t id) const
{
    TWOINONE_ASSERT(id < requests_.size(), "unknown request id");
    TWOINONE_ASSERT(requests_[id].done, "request ", id,
                    " not served yet — call drain()");
    TWOINONE_ASSERT(!requests_[id].cleared, "request ", id,
                    " was released by clearServed()");
    return requests_[id].y;
}

void
ServingRuntime::clearServed()
{
    for (size_t i = 0; i < nextToServe_; ++i) {
        Request &r = requests_[i];
        if (r.cleared)
            continue;
        r.x = Tensor();
        r.y = Tensor();
        r.cleared = true;
    }
}

ServeStats
ServingRuntime::stats() const
{
    ServeStats s;
    s.requests = servedRequests_;
    s.rows = servedRows_;
    s.batches = servedBatches_;
    s.rejected = rejected_;
    s.wallSeconds = wallSeconds_;
    s.qps = wallSeconds_ > 0.0
                ? static_cast<double>(servedRows_) / wallSeconds_
                : 0.0;
    s.p50Us = latencyUs_.quantile(0.5);
    s.p99Us = latencyUs_.quantile(0.99);
    s.p999Us = latencyUs_.quantile(0.999);
    return s;
}

void
ServingRuntime::resetStats()
{
    servedRequests_ = 0;
    servedRows_ = 0;
    servedBatches_ = 0;
    rejected_ = 0;
    wallSeconds_ = 0.0;
    latencyUs_.clear();
}

} // namespace serve
} // namespace twoinone
