/**
 * @file
 * Synthetic dataset generator implementation.
 */

#include "data/synthetic.hh"

#include <cmath>

#include "common/logging.hh"
#include "tensor/ops.hh"

namespace twoinone {

Dataset
Dataset::batch(int start, int len) const
{
    TWOINONE_ASSERT(start >= 0 && start + len <= size(),
                    "batch range out of dataset");
    Dataset b;
    b.images = images.slice0(start, len);
    b.labels.assign(labels.begin() + start, labels.begin() + start + len);
    b.numClasses = numClasses;
    b.name = name;
    return b;
}

namespace {

/**
 * Build one smooth class template: a random low-frequency mixture of
 * 2-D sinusoids per channel, normalized into [0.15, 0.85] so noise and
 * adversarial perturbations stay inside the valid [0,1] image range.
 */
Tensor
makeTemplate(const SyntheticConfig &cfg, Rng &rng)
{
    Tensor t({cfg.channels, cfg.height, cfg.width});
    for (int c = 0; c < cfg.channels; ++c) {
        // Random frequency/phase mixture.
        std::vector<double> fx, fy, ph, amp;
        for (int k = 0; k < cfg.templateWaves; ++k) {
            fx.push_back(rng.uniform(0.5, 2.5));
            fy.push_back(rng.uniform(0.5, 2.5));
            ph.push_back(rng.uniform(0.0, 2.0 * M_PI));
            amp.push_back(rng.uniform(0.5, 1.0));
        }
        float lo = 1e30f, hi = -1e30f;
        for (int y = 0; y < cfg.height; ++y) {
            for (int x = 0; x < cfg.width; ++x) {
                double v = 0.0;
                for (int k = 0; k < cfg.templateWaves; ++k) {
                    v += amp[static_cast<size_t>(k)] *
                         std::sin(2.0 * M_PI *
                                      (fx[static_cast<size_t>(k)] * x /
                                           cfg.width +
                                       fy[static_cast<size_t>(k)] * y /
                                           cfg.height) +
                                  ph[static_cast<size_t>(k)]);
                }
                float fv = static_cast<float>(v);
                size_t idx = (static_cast<size_t>(c) * cfg.height + y) *
                                 cfg.width +
                             x;
                t[idx] = fv;
                lo = std::min(lo, fv);
                hi = std::max(hi, fv);
            }
        }
        // Normalize channel into [0.15, 0.85], then add a per-class
        // channel signature (a "color" bias) so that classes are
        // separable both spatially and chromatically — global-pooled
        // networks can learn the task quickly while attacks still
        // perturb both cues.
        float chan_off = static_cast<float>(rng.uniform(-0.12, 0.12));
        float range = std::max(1e-6f, hi - lo);
        for (int y = 0; y < cfg.height; ++y) {
            for (int x = 0; x < cfg.width; ++x) {
                size_t idx = (static_cast<size_t>(c) * cfg.height + y) *
                                 cfg.width +
                             x;
                float v = 0.15f + 0.7f * (t[idx] - lo) / range + chan_off;
                t[idx] = std::min(0.92f, std::max(0.08f, v));
            }
        }
    }
    return t;
}

/** Sample one image: shifted template + gain/offset + pixel noise. */
void
renderSample(const SyntheticConfig &cfg, const Tensor &tmpl, Rng &rng,
             Tensor &out, int n)
{
    int dy = rng.uniformInt(-cfg.shiftJitter, cfg.shiftJitter);
    int dx = rng.uniformInt(-cfg.shiftJitter, cfg.shiftJitter);
    float offset = static_cast<float>(
        rng.uniform(-cfg.brightnessJitter, cfg.brightnessJitter));
    for (int c = 0; c < cfg.channels; ++c) {
        for (int y = 0; y < cfg.height; ++y) {
            for (int x = 0; x < cfg.width; ++x) {
                // Toroidal shift keeps all pixels informative.
                int sy = (y + dy + cfg.height) % cfg.height;
                int sx = (x + dx + cfg.width) % cfg.width;
                size_t tidx = (static_cast<size_t>(c) * cfg.height + sy) *
                                  cfg.width +
                              sx;
                float v = tmpl[tidx] + offset +
                          static_cast<float>(rng.normal(0.0, cfg.noiseStd));
                out.at4(n, c, y, x) = std::min(1.0f, std::max(0.0f, v));
            }
        }
    }
}

Dataset
renderSplit(const SyntheticConfig &cfg, const std::vector<Tensor> &templates,
            int count, Rng &rng, const std::string &name)
{
    Dataset d;
    d.numClasses = cfg.numClasses;
    d.name = name;
    d.images = Tensor({count, cfg.channels, cfg.height, cfg.width});
    d.labels.resize(static_cast<size_t>(count));
    for (int i = 0; i < count; ++i) {
        int y = rng.uniformInt(0, cfg.numClasses - 1);
        d.labels[static_cast<size_t>(i)] = y;
        renderSample(cfg, templates[static_cast<size_t>(y)], rng, d.images,
                     i);
    }
    return d;
}

} // namespace

DatasetPair
makeSynthetic(const SyntheticConfig &cfg, const std::string &name)
{
    TWOINONE_ASSERT(cfg.numClasses >= 2, "need at least two classes");
    TWOINONE_ASSERT(cfg.trainSize > 0 && cfg.testSize > 0,
                    "empty dataset split");
    Rng rng(cfg.seed);
    std::vector<Tensor> templates;
    templates.reserve(static_cast<size_t>(cfg.numClasses));
    for (int k = 0; k < cfg.numClasses; ++k)
        templates.push_back(makeTemplate(cfg, rng));

    DatasetPair pair;
    pair.train = renderSplit(cfg, templates, cfg.trainSize, rng,
                             name + "/train");
    pair.test = renderSplit(cfg, templates, cfg.testSize, rng,
                            name + "/test");
    return pair;
}

DatasetPair
makeCifar10Like(double scale, uint64_t seed)
{
    SyntheticConfig cfg;
    cfg.numClasses = 10;
    cfg.height = cfg.width = 8;
    cfg.trainSize = static_cast<int>(1024 * scale);
    cfg.testSize = static_cast<int>(512 * scale);
    cfg.seed = seed;
    return makeSynthetic(cfg, "cifar10-like");
}

DatasetPair
makeCifar100Like(double scale, uint64_t seed)
{
    SyntheticConfig cfg;
    cfg.numClasses = 20; // scaled-down class count, same flavour
    cfg.height = cfg.width = 8;
    cfg.trainSize = static_cast<int>(1536 * scale);
    cfg.testSize = static_cast<int>(512 * scale);
    cfg.noiseStd = 0.12f;
    cfg.seed = seed;
    return makeSynthetic(cfg, "cifar100-like");
}

DatasetPair
makeSvhnLike(double scale, uint64_t seed)
{
    SyntheticConfig cfg;
    cfg.numClasses = 10;
    cfg.height = cfg.width = 8;
    cfg.trainSize = static_cast<int>(1024 * scale);
    cfg.testSize = static_cast<int>(512 * scale);
    // Digit-crop flavour: higher-frequency templates, less spatial
    // jitter but heavier pixel noise (cluttered street-number crops).
    cfg.templateWaves = 4;
    cfg.shiftJitter = 0;
    cfg.noiseStd = 0.16f;
    cfg.brightnessJitter = 0.12f;
    cfg.seed = seed;
    return makeSynthetic(cfg, "svhn-like");
}

DatasetPair
makeImageNetLike(double scale, uint64_t seed)
{
    SyntheticConfig cfg;
    cfg.numClasses = 16;
    cfg.height = cfg.width = 12;
    cfg.trainSize = static_cast<int>(1024 * scale);
    cfg.testSize = static_cast<int>(384 * scale);
    cfg.templateWaves = 3;
    cfg.noiseStd = 0.12f;
    cfg.seed = seed;
    return makeSynthetic(cfg, "imagenet-like");
}

} // namespace twoinone
