/**
 * @file
 * Procedurally generated image-classification datasets.
 *
 * The paper evaluates on CIFAR-10/100, SVHN and ImageNet; those are
 * unavailable offline, so each is replaced by a synthetic dataset in
 * the same input domain ([0,1] RGB images) whose classes are defined
 * by smooth per-class template images plus per-sample structured
 * nuisances (global gain/offset, spatial jitter, Gaussian pixel
 * noise). The tasks are easy enough to learn in seconds yet hard
 * enough that gradient-based adversarial attacks succeed against
 * naturally trained models — which is the property the RPS
 * experiments need (see DESIGN.md §1).
 */

#ifndef TWOINONE_DATA_SYNTHETIC_HH
#define TWOINONE_DATA_SYNTHETIC_HH

#include <string>
#include <vector>

#include "common/rng.hh"
#include "tensor/tensor.hh"

namespace twoinone {

/**
 * An in-memory labelled image dataset.
 */
struct Dataset
{
    /** Images, [N, C, H, W], values in [0, 1]. */
    Tensor images;
    /** N labels in [0, numClasses). */
    std::vector<int> labels;
    /** Class count. */
    int numClasses = 0;
    /** Dataset name for reports. */
    std::string name;

    int size() const { return images.empty() ? 0 : images.dim(0); }

    /** Copy a contiguous batch [start, start+len). */
    Dataset batch(int start, int len) const;
};

/**
 * Configuration of the synthetic generator.
 */
struct SyntheticConfig
{
    int numClasses = 10;
    int channels = 3;
    int height = 8;
    int width = 8;
    int trainSize = 1024;
    int testSize = 512;
    /** Template smoothness: higher = lower-frequency class patterns. */
    int templateWaves = 2;
    /** Per-pixel Gaussian noise stddev. */
    float noiseStd = 0.10f;
    /** Max absolute global brightness offset. */
    float brightnessJitter = 0.08f;
    /** Max spatial shift of the template in pixels. */
    int shiftJitter = 1;
    uint64_t seed = 7;
};

/**
 * Train/test pair produced by the generator.
 */
struct DatasetPair
{
    Dataset train;
    Dataset test;
};

/** Generate a dataset pair from an explicit configuration. */
DatasetPair makeSynthetic(const SyntheticConfig &cfg,
                          const std::string &name);

/** @name Stand-ins for the paper's four evaluation datasets
 * (DESIGN.md §1). Scale factor multiplies train/test sizes. */
/** @{ */
DatasetPair makeCifar10Like(double scale = 1.0, uint64_t seed = 11);
DatasetPair makeCifar100Like(double scale = 1.0, uint64_t seed = 13);
DatasetPair makeSvhnLike(double scale = 1.0, uint64_t seed = 17);
DatasetPair makeImageNetLike(double scale = 1.0, uint64_t seed = 19);
/** @} */

} // namespace twoinone

#endif // TWOINONE_DATA_SYNTHETIC_HH
