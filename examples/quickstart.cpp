/**
 * @file
 * Quickstart: the whole 2-in-1 pipeline in ~80 lines.
 *
 *  1. build a synthetic dataset and an RPS-capable residual network;
 *  2. adversarially train it with PGD-7 + RPS (paper Alg. 1);
 *  3. evaluate natural and robust accuracy with and without the
 *     random precision switch;
 *  4. persist the trained model as a versioned checkpoint, reload it
 *     in a fresh Session, and serve batched traffic at randomly
 *     drawn precisions;
 *  5. deploy it on the 2-in-1 accelerator model and read back
 *     latency/energy per inference.
 *
 * Build: cmake --build build --target quickstart
 * Run:   ./build/examples/quickstart
 */

#include <iostream>

#include "adversarial/evaluation.hh"
#include "adversarial/pgd.hh"
#include "adversarial/trainer.hh"
#include "core/system.hh"
#include "data/synthetic.hh"
#include "nn/model_zoo.hh"
#include "serve/session.hh"
#include "workloads/model_library.hh"

using namespace twoinone;

int
main()
{
    // 1. Data and model. The precision set is the paper's default
    //    RPS candidate set {4,5,6,8,12,16}.
    DatasetPair data = makeCifar10Like(/*scale=*/0.5);
    PrecisionSet set = PrecisionSet::rps4to16();

    Rng rng(1);
    ModelConfig mcfg;
    mcfg.baseWidth = 4;
    mcfg.precisions = set;
    Network model = preActResNetMini(mcfg, rng);
    std::cout << "model parameters: " << model.parameterCount()
              << ", SBN banks: " << model.bnBanks() << "\n";

    // 2. RPS adversarial training (Alg. 1): every iteration samples a
    //    precision, generates PGD-7 adversarial examples at that
    //    precision, and updates the model through the STE.
    TrainConfig tcfg;
    tcfg.method = TrainMethod::Pgd7;
    tcfg.rps = true;
    tcfg.epochs = 4;
    tcfg.verbose = true;
    Trainer trainer(model, tcfg);
    trainer.fit(data.train);
    model.setPrecision(0);

    // 3. Evaluate. The attacker samples a precision from the same
    //    set; the defender independently samples another (the
    //    paper's threat model).
    PgdAttack pgd20(AttackConfig::fromEps255(8.0f, 2.0f, 20));
    Rng eval_rng(2);
    double nat = rpsNaturalAccuracy(model, data.test, set, eval_rng);
    double rob =
        rpsRobustAccuracy(model, pgd20, data.test, set, eval_rng);
    double static_rob =
        robustAccuracy(model, pgd20, data.test, 8, 8, eval_rng);
    std::cout << "natural accuracy (RPS):        " << nat << "%\n"
              << "robust accuracy (RPS, PGD-20): " << rob << "%\n"
              << "robust accuracy (static 8b):   " << static_rob
              << "%\n";

    // 4. Persist the trained model — weights, SBN banks, calibration
    //    ranges, and the engine's pre-quantized weight codes — then
    //    redeploy it from the artifact in a fresh Session and serve
    //    batched traffic (one random precision per serving batch).
    {
        Session trained = Session::attach(model);
        trained.calibrate({data.test.images.slice0(0, 32)});
        trained.save("quickstart.ckpt");
    }
    Session deployed = Session::fromCheckpoint("quickstart.ckpt");
    std::vector<Tensor> requests;
    for (int i = 0; i < 4; ++i)
        requests.push_back(data.test.images.slice0(i * 8, 8));
    std::vector<Tensor> logits = deployed.serve(requests);
    serve::ServeStats sstats = deployed.stats();
    // stats().qps carries the throughput; the printout sticks to
    // deterministic fields so runs diff clean across thread counts.
    std::cout << "served " << sstats.rows << " rows in "
              << sstats.batches << " batches from the artifact; "
              << "precisions drawn:";
    for (int bits : deployed.precisionTrace())
        std::cout << " " << bits;
    std::cout << "\n";

    // 5. Deploy on the accelerator model: random precision per
    //    inference, costed as the full-scale PreActResNet-18 workload
    //    on the 2-in-1 accelerator.
    TwoInOneSystem system(model, workloads::preActResNet18Cifar(), set);
    InferenceStats stats = system.classify(data.test.images.slice0(0, 8));
    std::cout << "one inference drew " << stats.precision
              << "-bit, cost " << stats.cycles << " cycles / "
              << stats.energyPj * 1e-6 << " uJ\n"
              << "expected energy per inference over the set: "
              << system.avgEnergyPjPerInference() * 1e-6 << " uJ\n";
    return 0;
}
