/**
 * @file
 * Scenario example: an adaptive IoT smart camera.
 *
 * The paper's motivating deployment (Sec. 1, Sec. 2.5): an
 * IoT device that must stay robust in hostile environments and
 * frugal when the battery drains. This example runs a day/night duty
 * cycle where the runtime policy switches the RPS candidate set with
 * the threat level and the battery state — no retraining, using the
 * instant trade-off controller — and reports the accumulated energy
 * and the robustness achieved in each phase.
 *
 * Run: ./build/examples/iot_camera
 */

#include <iostream>

#include "adversarial/evaluation.hh"
#include "adversarial/pgd.hh"
#include "adversarial/trainer.hh"
#include "core/tradeoff.hh"
#include "nn/model_zoo.hh"
#include "workloads/model_library.hh"

using namespace twoinone;

namespace {

/** One phase of the device's duty cycle. */
struct Phase
{
    const char *name;
    SafetyCondition condition;
    int frames;
};

} // namespace

int
main()
{
    // Train the camera's classifier once with PGD-7 + RPS.
    DatasetPair data = makeCifar10Like(0.4);
    PrecisionSet full = PrecisionSet::rps4to16();
    Rng rng(11);
    ModelConfig mcfg;
    mcfg.baseWidth = 4;
    mcfg.precisions = full;
    Network model = wideResNetMini(mcfg, rng);

    TrainConfig tcfg;
    tcfg.method = TrainMethod::Pgd7;
    tcfg.rps = true;
    tcfg.epochs = 3;
    Trainer(model, tcfg).fit(data.train);
    model.setPrecision(0);

    TwoInOneSystem camera(model, workloads::wideResNet32Cifar(), full);
    PgdAttack pgd(AttackConfig::fromEps255(8.0f, 2.0f, 10));

    const Phase phases[] = {
        {"day / exposed network (hostile)", SafetyCondition::Hostile,
         32},
        {"evening / patrolled (elevated)", SafetyCondition::Elevated,
         32},
        {"night / gated area (normal)", SafetyCondition::Normal, 32},
        {"storage / battery save (safe)", SafetyCondition::Safe, 32},
    };

    Rng eval_rng(12);
    double total_energy_pj = 0.0;
    std::cout << "phase | set | robust%% | uJ/frame\n";
    for (const Phase &p : phases) {
        camera.controller().setPrecisionSet(
            precisionSetFor(p.condition));
        // Robustness under attack in this phase.
        Dataset probe = data.test.batch(0, p.frames);
        double rob = rpsRobustAccuracy(
            camera.controller().network(), pgd, probe,
            camera.controller().precisionSet(), eval_rng);
        // Energy actually spent classifying the phase's frames.
        double phase_energy = 0.0;
        for (int f = 0; f < p.frames; f += 8) {
            InferenceStats s =
                camera.classify(probe.images.slice0(f % 24, 8));
            phase_energy += s.energyPj;
        }
        total_energy_pj += phase_energy;
        std::cout << p.name << " | "
                  << camera.controller().precisionSet().name() << " | "
                  << rob << "% | "
                  << phase_energy / (p.frames / 8) * 1e-6 << "\n";
    }
    std::cout << "total energy over the duty cycle: "
              << total_energy_pj * 1e-6 << " uJ\n"
              << "(expected: robustness highest in the hostile phase, "
                 "energy/frame lowest in the safe phase)\n";
    return 0;
}
