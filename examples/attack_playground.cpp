/**
 * @file
 * Scenario example: red-team attack playground.
 *
 * Trains a defended (PGD-7 + RPS) and an undefended model, then runs
 * the library's full attack arsenal against both — the white-box
 * attacks (FGSM, PGD, CW-Inf, AutoAttack), the gradient-free Bandits
 * attack, and the RPS-aware adaptive E-PGD — printing a side-by-side
 * scoreboard. This is the experiment to extend when probing a new
 * defense for obfuscated gradients (paper Sec. 4.2.2).
 *
 * Run: ./build/examples/attack_playground
 */

#include <iostream>
#include <memory>

#include "adversarial/autoattack.hh"
#include "adversarial/bandits.hh"
#include "adversarial/cw.hh"
#include "adversarial/epgd.hh"
#include "adversarial/evaluation.hh"
#include "adversarial/fgsm.hh"
#include "adversarial/pgd.hh"
#include "adversarial/trainer.hh"
#include "common/stats.hh"
#include "nn/model_zoo.hh"

using namespace twoinone;

int
main()
{
    DatasetPair data = makeCifar10Like(0.4);
    PrecisionSet set = PrecisionSet::rps4to16();
    Dataset eval = data.test.batch(0, 64);

    Rng rng(31);
    ModelConfig mcfg;
    mcfg.baseWidth = 4;
    mcfg.precisions = set;

    Network natural = preActResNetMini(mcfg, rng);
    Network defended = preActResNetMini(mcfg, rng);

    TrainConfig nat_cfg;
    nat_cfg.method = TrainMethod::Natural;
    nat_cfg.epochs = 4;
    Trainer(natural, nat_cfg).fit(data.train);
    natural.setPrecision(0);

    TrainConfig def_cfg;
    def_cfg.method = TrainMethod::Pgd7;
    def_cfg.rps = true;
    def_cfg.epochs = 4;
    Trainer(defended, def_cfg).fit(data.train);
    defended.setPrecision(0);

    AttackConfig cfg = AttackConfig::fromEps255(8.0f, 2.0f, 20);
    FgsmAttack fgsm(cfg);
    PgdAttack pgd(cfg);
    CwInfAttack cw(cfg);
    AutoAttackLite aa(cfg);
    BanditsAttack bandits(cfg);
    EpgdAttack epgd(cfg, set);

    const std::pair<Attack *, const char *> arsenal[] = {
        {&fgsm, "FGSM"},     {&pgd, "PGD-20"},
        {&cw, "CW-Inf"},     {&aa, "AutoAttack"},
        {&bandits, "Bandits"}, {&epgd, "E-PGD (adaptive)"},
    };

    TablePrinter board;
    board.header({"attack", "undefended(%)", "PGD-7+RPS(%)"});
    Rng a_rng(32);
    board.row({"(clean)",
               formatFixed(naturalAccuracy(natural, eval), 1),
               formatFixed(rpsNaturalAccuracy(defended, eval, set,
                                              a_rng),
                           1)});
    for (const auto &[attack, name] : arsenal) {
        double undef = robustAccuracy(natural, *attack, eval, 0, 0,
                                      a_rng);
        double def = rpsRobustAccuracy(defended, *attack, eval, set,
                                       a_rng);
        board.row({name, formatFixed(undef, 1), formatFixed(def, 1)});
    }
    board.print();
    std::cout << "(expected: every attack flattens the undefended "
                 "model; the RPS-defended model retains substantial "
                 "robust accuracy, including against the gradient-"
                 "free and adaptive attacks)\n";
    return 0;
}
