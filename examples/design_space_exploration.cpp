/**
 * @file
 * Scenario example: accelerator design-space exploration.
 *
 * Uses the library the way an architect would (paper Sec. 3.3): given
 * a workload (ResNet-50) and an area budget, (1) compare the three
 * MAC-unit designs under iso-area, (2) run the Alg. 2 evolutionary
 * dataflow search and show what it buys over the heuristic mapping,
 * and (3) sweep micro-architectures (array area vs buffer size) with
 * the joint search mode to pick the best configuration for a
 * variable-precision (RPS) deployment.
 *
 * Run: ./build/examples/design_space_exploration
 */

#include <iostream>

#include "common/stats.hh"
#include "optimizer/arch_search.hh"
#include "workloads/model_library.hh"

using namespace twoinone;

int
main()
{
    const TechModel &tech = TechModel::defaults();
    double budget = Accelerator::defaultAreaBudget();
    NetworkWorkload net = workloads::resNet50();
    std::cout << "workload: " << net.name << ", "
              << net.layers.size() << " layers, "
              << net.totalMacs() / 1e9 << " GMACs\n";

    // 1. Iso-area design comparison at the RPS set's precisions.
    TablePrinter cmp;
    cmp.header({"design", "units", "4b FPS", "8b FPS", "16b FPS",
                "8b uJ/inf"});
    for (AcceleratorKind kind :
         {AcceleratorKind::TwoInOne, AcceleratorKind::Stripes,
          AcceleratorKind::BitFusion}) {
        Accelerator accel(kind, budget, tech);
        auto fps = [&](int q) {
            return formatFixed(
                accel.run(net, q, q).fps(tech.clockGhz, 1), 1);
        };
        cmp.row({accel.name(), std::to_string(accel.numUnits()),
                 fps(4), fps(8), fps(16),
                 formatFixed(accel.run(net, 8, 8).totalEnergyPj * 1e-6,
                             1)});
    }
    cmp.print();

    // 2. What the evolutionary dataflow optimizer buys (Alg. 2).
    Accelerator ours(AcceleratorKind::TwoInOne, budget, tech);
    EvoConfig cfg;
    cfg.populationSize = 20;
    cfg.totalCycles = 8;
    cfg.objective = Objective::EnergyDelay;
    std::vector<Dataflow> dfs =
        optimizeNetworkDataflows(ours, net, 4, 4, cfg);
    NetworkPrediction greedy = ours.run(net, 4, 4);
    NetworkPrediction opt =
        ours.predictor().predictNetwork(net, 4, 4, dfs);
    std::cout << "\nAlg. 2 on ours @4-bit: "
              << formatFixed(greedy.totalCycles / opt.totalCycles, 2)
              << "x cycles, "
              << formatFixed(greedy.totalEnergyPj / opt.totalEnergyPj,
                             2)
              << "x energy over the heuristic mapping\n";
    std::cout << "an optimized layer mapping (stage3 conv):\n"
              << dfs[20].describe();

    // 3. Joint micro-architecture + dataflow search for the RPS set.
    ArchSearchSpace space = ArchSearchSpace::makeDefault(budget * 1.2);
    NetworkWorkload probe;
    probe.name = "ResNet-50 probe";
    probe.layers = {net.layers[8], net.layers[20], net.layers[40]};
    EvoConfig jcfg;
    jcfg.populationSize = 10;
    jcfg.totalCycles = 3;
    ArchSearchResult r = searchMicroArchitecture(
        AcceleratorKind::TwoInOne, space, probe,
        PrecisionSet::rps4to16(), jcfg, tech);
    if (r.found) {
        std::cout << "\njoint search over " << r.evaluated.size()
                  << " micro-architectures -> best: array area "
                  << r.best.macArrayArea << ", GB "
                  << r.best.gbCapacityBits / 8192.0 << " KB\n";
    }
    return 0;
}
