/**
 * @file
 * Paper Fig. 11: instant robustness-efficiency trade-off on
 * WideResNet-32 / CIFAR-10 — switching the RPS candidate set among
 * 4~16, 4~12, 4~8 and static 4-bit at run time, without retraining.
 * Expected shape: robust accuracy decreases and energy efficiency
 * increases monotonically from the full set to static 4-bit, with
 * natural accuracy in a narrow band (paper: 81.5%~84.7%).
 */

#include "adversarial/pgd.hh"
#include "bench_util.hh"
#include "core/tradeoff.hh"
#include "workloads/model_library.hh"

using namespace twoinone;

int
main()
{
    bench::banner("Fig. 11 — instant robustness-efficiency trade-off");
    bench::scaleNote();

    PrecisionSet set = PrecisionSet::rps4to16();
    DatasetPair data = makeCifar10Like(bench::fastMode() ? 0.3 : 0.5);
    Dataset eval = data.test.batch(0, bench::scaled(96));

    Rng init(1010);
    Network model = bench::makeWideMini(set, 10, init);
    model = bench::trainModel(std::move(model), TrainMethod::Pgd7,
                              /*rps=*/true, data.train, 1011);

    TwoInOneSystem system(model, workloads::wideResNet32Cifar(), set);
    PgdAttack pgd20(AttackConfig::fromEps255(8.0f, 2.0f, 20));
    Rng rng(1012);
    auto points = evaluateTradeoffCurve(system, eval, pgd20, rng);

    TablePrinter table;
    table.header({"precision set", "natural(%)", "robust(%)",
                  "energy/inf(uJ)", "norm. efficiency"});
    for (const TradeoffPoint &p : points) {
        table.row({p.setName, formatFixed(p.naturalAccuracy, 2),
                   formatFixed(p.robustAccuracy, 2),
                   formatFixed(p.avgEnergyPj * 1e-6, 1),
                   formatFixed(p.normalizedEfficiency, 2) + "x"});
    }
    table.print();
    std::cout << "expected shape: robustness falls / efficiency rises "
                 "monotonically toward static 4-bit; natural accuracy "
                 "stays in a narrow band\n";
    return 0;
}
