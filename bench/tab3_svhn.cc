/**
 * @file
 * Paper Tab. 3: RPS on SVHN (stand-in) with FGSM-RS and PGD-7 on both
 * networks. Expected shape: +RPS gains ~+9% ~ +15% PGD-20 robust
 * accuracy at comparable natural accuracy.
 */

#include "adversarial/pgd.hh"
#include "bench_util.hh"

using namespace twoinone;

int
main()
{
    bench::banner("Tab. 3 — RPS on SVHN (stand-in)");
    bench::scaleNote();

    PrecisionSet set = PrecisionSet::rps4to16();
    DatasetPair data = makeSvhnLike(bench::fastMode() ? 0.3 : 0.5);
    Dataset eval = data.test.batch(0, bench::scaled(96));

    PgdAttack pgd20(AttackConfig::fromEps255(8.0f, 2.0f, 20));
    PgdAttack pgd100(AttackConfig::fromEps255(8.0f, 2.0f, 100));

    const std::pair<TrainMethod, std::string> methods[] = {
        {TrainMethod::FgsmRs, "FGSM-RS"},
        {TrainMethod::Pgd7, "PGD-7"},
    };

    for (bool wide : {false, true}) {
        bench::banner(std::string("Tab. 3 — ") +
                      (wide ? "WideResNet-32 (mini)"
                            : "PreActResNet-18 (mini)"));
        TablePrinter table;
        table.header(
            {"Training", "Natural(%)", "PGD-20(%)", "PGD-100(%)"});
        uint64_t seed = wide ? 620 : 610;
        for (const auto &[method, name] : methods) {
            for (bool rps : {false, true}) {
                Rng init(seed);
                Rng eval_rng(seed + 3);
                Network model =
                    wide ? bench::makeWideMini(set, 10, init)
                         : bench::makePreActMini(set, 10, init);
                model = bench::trainModel(std::move(model), method, rps,
                                          data.train, seed + 5);
                double nat, p20, p100;
                if (rps) {
                    nat = rpsNaturalAccuracy(model, eval, set, eval_rng);
                    p20 = rpsRobustAccuracy(model, pgd20, eval, set,
                                            eval_rng);
                    p100 = rpsRobustAccuracy(model, pgd100, eval, set,
                                             eval_rng);
                } else {
                    nat = naturalAccuracy(model, eval);
                    p20 = bench::baselineRobust(model, pgd20, eval,
                                                eval_rng);
                    p100 = bench::baselineRobust(model, pgd100, eval,
                                                 eval_rng);
                }
                table.row({name + (rps ? "+RPS" : ""),
                           formatFixed(nat, 2), formatFixed(p20, 2),
                           formatFixed(p100, 2)});
                ++seed;
            }
        }
        table.print();
    }
    return 0;
}
