/**
 * @file
 * Kernel microbenchmark harness for the compute backend (ISSUE 1).
 *
 * Times the GEMM kernels on square shapes plus per-image GEMM shapes
 * drawn from the model-zoo layer library (m = K output channels,
 * n = OY*OX, k = C*R*S), Conv2d forward/backward at bench scale, and
 * end-to-end PGD attack steps — each under both the retained naive
 * reference backend and the blocked/parallel backend — and writes
 * BENCH_kernels.json into the working directory so the performance
 * trajectory is tracked from this PR onward.
 *
 * JSON schema (all times are mean wall ns per operation):
 *   meta: { threads, default_backend, isa_tier, fast }
 *   gemm: [ { name, m, n, k, naive_ns, blocked_ns,
 *             naive_gflops, blocked_gflops, speedup } ]
 *   int_gemm: [ { name, m, n, k, bits, int_ns, gops, float_ns,
 *                 speedup_vs_float, isa_tier } ]  (packed kernels,
 *             per candidate bit width x paper shapes)
 *   conv: [ { name, batch, fwd_naive_ns, fwd_blocked_ns, fwd_speedup,
 *             bwd_naive_ns, bwd_blocked_ns, bwd_speedup } ]
 *   pgd:  [ { name, batch, steps, step_naive_ns, step_blocked_ns,
 *             speedup } ]
 *
 * TWOINONE_BENCH_FAST=1 shrinks shapes and timing budgets for CI
 * smoke runs. Not a google-benchmark binary on purpose: the harness
 * needs to flip the backend per measurement and emit machine-readable
 * JSON.
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iostream>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "adversarial/pgd.hh"
#include "bench_util.hh"
#include "common/thread_pool.hh"
#include "data/synthetic.hh"
#include "nn/conv2d.hh"
#include "nn/model_zoo.hh"
#include "tensor/gemm.hh"
#include "tensor/tensor.hh"
#include "workloads/model_library.hh"

namespace {

using namespace twoinone;
using Clock = std::chrono::steady_clock;

/** Mean wall ns/op of fn, run repeatedly for a minimum budget. */
double
timeNs(const std::function<void()> &fn, double min_seconds)
{
    fn(); // warm-up (thread-local pack buffers, page faults)
    int64_t reps = 0;
    auto start = Clock::now();
    double elapsed = 0.0;
    do {
        fn();
        ++reps;
        elapsed = std::chrono::duration<double>(Clock::now() - start)
                      .count();
    } while (elapsed < min_seconds || reps < 3);
    return elapsed * 1e9 / static_cast<double>(reps);
}

struct GemmRow
{
    std::string name;
    int m, n, k;
    double naive_ns, blocked_ns;
    double gflops(double ns) const
    {
        return 2.0 * m * n * k / ns; // flops/ns == GFLOP/s
    }
};

struct ConvRow
{
    std::string name;
    int batch;
    double fwd_naive_ns, fwd_blocked_ns;
    double bwd_naive_ns, bwd_blocked_ns;
};

struct PgdRow
{
    std::string name;
    int batch, steps;
    double naive_ns, blocked_ns;
};

GemmRow
benchGemmShape(const std::string &name, int m, int n, int k,
               double min_seconds, Rng &rng)
{
    Tensor a = Tensor::randn({m, k}, rng);
    Tensor b = Tensor::randn({k, n}, rng);
    Tensor c({m, n});
    GemmRow row{name, m, n, k, 0.0, 0.0, };
    row.naive_ns = timeNs(
        [&] {
            gemm::sgemm(gemm::Backend::Naive, false, false, m, n, k,
                        a.data(), k, b.data(), n, c.data(), n);
        },
        min_seconds);
    row.blocked_ns = timeNs(
        [&] {
            gemm::sgemm(gemm::Backend::Blocked, false, false, m, n, k,
                        a.data(), k, b.data(), n, c.data(), n);
        },
        min_seconds);
    return row;
}

/** One packed-int-GEMM measurement: a (shape, bit width) cell of the
 * candidate-precision sweep, timed against the blocked float SGEMM on
 * the same shape (the number the quantized path must beat). */
struct IntGemmRow
{
    std::string name;
    int m, n, k, bits;
    double int_ns = 0.0;
    double float_ns = 0.0;
    double gops() const { return 2.0 * m * n * k / int_ns; }
};

std::vector<IntGemmRow>
benchIntGemmSweep(double min_seconds, bool fast, Rng &rng)
{
    // Paper shapes: the square ResNet bench product plus per-image
    // conv shapes (m=K, n=OY*OX, k=C*R*S) at ResNet-18/CIFAR scale.
    struct Shape
    {
        std::string name;
        int m, n, k;
    };
    std::vector<Shape> shapes = {{"sq256", 256, 256, 256},
                                 {"rn18_l1", 64, 1024, 576},
                                 {"rn18_l3", 256, 64, 2304}};
    if (fast)
        shapes.resize(1);
    std::vector<int> widths = {2, 4, 8, 12, 16};

    std::vector<IntGemmRow> rows;
    for (const Shape &s : shapes) {
        // The float yardstick: blocked SGEMM on the same shape.
        Tensor fa = Tensor::randn({s.m, s.k}, rng);
        Tensor fb = Tensor::randn({s.k, s.n}, rng);
        Tensor fc({s.m, s.n});
        double float_ns = timeNs(
            [&] {
                gemm::sgemm(gemm::Backend::Blocked, false, false, s.m,
                            s.n, s.k, fa.data(), s.k, fb.data(), s.n,
                            fc.data(), s.n);
            },
            min_seconds);

        for (int bits : widths) {
            int qw = bits <= 1 ? 1 : (1 << (bits - 1)) - 1;
            uint32_t qa = (uint32_t{1} << bits) - 1;
            std::vector<int32_t> wcodes(static_cast<size_t>(s.m) * s.k);
            for (int32_t &v : wcodes)
                v = rng.uniformInt(-qw, qw);
            gemm::PackedIntWeights pw;
            gemm::packWeights(wcodes.data(), s.m, s.k, bits, pw);
            std::vector<int64_t> c(static_cast<size_t>(s.m) * s.n);

            IntGemmRow row{s.name + "_b" + std::to_string(bits), s.m,
                           s.n, s.k, bits};
            row.float_ns = float_ns;
            if (bits <= 8) {
                std::vector<uint8_t> b(static_cast<size_t>(s.n) * s.k);
                for (uint8_t &v : b)
                    v = static_cast<uint8_t>(
                        rng.uniformInt(0, static_cast<int>(qa)));
                row.int_ns = timeNs(
                    [&] {
                        gemm::igemmPackedTransB(pw, s.n, b.data(), s.k,
                                                c.data(), s.n, bits);
                    },
                    min_seconds);
            } else {
                std::vector<uint16_t> b(static_cast<size_t>(s.n) * s.k);
                for (uint16_t &v : b)
                    v = static_cast<uint16_t>(
                        rng.uniformInt(0, static_cast<int>(qa)));
                row.int_ns = timeNs(
                    [&] {
                        gemm::igemmPackedTransB(pw, s.n, b.data(), s.k,
                                                c.data(), s.n, bits);
                    },
                    min_seconds);
            }
            rows.push_back(row);
        }
    }
    return rows;
}

/** Conv layer geometry for the conv/bench rows. */
struct ConvCase
{
    std::string name;
    int batch, c, kout, hw, kernel, stride, padding;
};

ConvRow
benchConv(const ConvCase &cc, double min_seconds, Rng &rng)
{
    Conv2d layer(cc.c, cc.kout, cc.kernel, cc.stride, cc.padding,
                 /*bias=*/true, rng);
    Tensor x = Tensor::uniform({cc.batch, cc.c, cc.hw, cc.hw}, rng, 0.0f,
                               1.0f);
    int oh = layer.outSize(cc.hw);
    Tensor grad = Tensor::randn({cc.batch, cc.kout, oh, oh}, rng, 0.1f);

    ConvRow row{cc.name, cc.batch, 0.0, 0.0, 0.0, 0.0};
    for (auto backend : {gemm::Backend::Naive, gemm::Backend::Blocked}) {
        gemm::setActiveBackend(backend);
        double fwd = timeNs([&] { layer.forward(x, false); }, min_seconds);
        // Backward requires a fresh forward each iteration; report
        // the backward cost as (fwd+bwd) - fwd.
        double both = timeNs(
            [&] {
                layer.forward(x, false);
                layer.backward(grad);
            },
            min_seconds);
        double bwd = both > fwd ? both - fwd : 0.0;
        if (backend == gemm::Backend::Naive) {
            row.fwd_naive_ns = fwd;
            row.bwd_naive_ns = bwd;
        } else {
            row.fwd_blocked_ns = fwd;
            row.bwd_blocked_ns = bwd;
        }
    }
    return row;
}

PgdRow
benchPgd(double min_seconds, bool fast, Rng &rng)
{
    ModelConfig mcfg;
    mcfg.baseWidth = 4;
    mcfg.numClasses = 10;
    Network net = preActResNetMini(mcfg, rng);

    SyntheticConfig scfg;
    scfg.trainSize = 64;
    scfg.testSize = 64;
    DatasetPair data = makeSynthetic(scfg, "kernel-bench");
    int batch = fast ? 8 : 16;
    Dataset eval = data.test.batch(0, batch);

    AttackConfig acfg;
    acfg.steps = fast ? 3 : 5;
    acfg.restarts = 1;
    PgdAttack attack(acfg);

    PgdRow row{"pgd_preact_mini", batch, acfg.steps, 0.0, 0.0};
    for (auto backend : {gemm::Backend::Naive, gemm::Backend::Blocked}) {
        gemm::setActiveBackend(backend);
        double total = timeNs(
            [&] {
                Rng attack_rng(77);
                attack.perturb(net, eval.images, eval.labels, attack_rng);
            },
            min_seconds);
        double per_step = total / acfg.steps;
        if (backend == gemm::Backend::Naive)
            row.naive_ns = per_step;
        else
            row.blocked_ns = per_step;
    }
    return row;
}

/** Per-image GEMM shapes (m=K, n=OY*OX, k=C*R*S) from the model zoo. */
std::vector<GemmRow>
modelZooGemmShapes(double min_seconds, bool fast, Rng &rng)
{
    std::vector<GemmRow> rows;
    std::set<std::tuple<int, int, int>> seen;
    NetworkWorkload net = workloads::resNet18Cifar(1);
    int budget = fast ? 3 : 6;
    for (const ConvShape &l : net.layers) {
        int m = l.k;
        int n = l.oy * l.ox;
        int kk = l.c * l.r * l.s;
        if (!seen.insert({m, n, kk}).second)
            continue;
        if (static_cast<int64_t>(m) * n * kk < 1 << 18)
            continue; // skip shapes too small to time meaningfully
        rows.push_back(benchGemmShape("resnet18c_" + l.name, m, n, kk,
                                      min_seconds, rng));
        if (static_cast<int>(rows.size()) >= budget)
            break;
    }
    return rows;
}

std::string
jsonNum(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f", v);
    return buf;
}

/** Sub-cutoff GEMM timing: the serial naive loops vs the light
 * row-parallel path the blocked backend now routes small products
 * through (ISSUE 3 satellite), with the dispatched path logged. The
 * quantized twin measures the same shape through the packed integer
 * kernels vs the serial reference igemm (ISSUE 8 satellite: small
 * quantized products no longer run serial-naive rows). */
struct SmallGemmRow
{
    int m, n, k;
    double serial_ns = 0.0;
    double light_ns = 0.0;
    double int_serial_ns = 0.0;
    double int_packed_ns = 0.0;
    bool parallel = false;
};

SmallGemmRow
benchSmallGemm(double min_seconds, Rng &rng)
{
    // A per-layer GEMM shape of the tiny bench models: below the
    // 16K-MAC packing cutoff, historically serial by design.
    SmallGemmRow row;
    row.m = 16;
    row.n = 64;
    row.k = 36;
    Tensor a = Tensor::randn({row.m, row.k}, rng);
    Tensor b = Tensor::randn({row.k, row.n}, rng);
    Tensor c({row.m, row.n});
    row.parallel = gemm::smallGemmRunsParallel(row.m, row.n, row.k);
    row.serial_ns = timeNs(
        [&] {
            ThreadPool::ScopedSerial guard;
            gemm::sgemm(gemm::Backend::Blocked, false, false, row.m,
                        row.n, row.k, a.data(), row.k, b.data(), row.n,
                        c.data(), row.n);
        },
        min_seconds);
    row.light_ns = timeNs(
        [&] {
            gemm::sgemm(gemm::Backend::Blocked, false, false, row.m,
                        row.n, row.k, a.data(), row.k, b.data(), row.n,
                        c.data(), row.n);
        },
        min_seconds);

    // The quantized twin at 8 bits: reference igemm rows (serial)
    // vs the packed kernel, which parallelizes columns under the
    // same inline-when-tiny grain contract as the float light path.
    std::vector<int32_t> wcodes(static_cast<size_t>(row.m) * row.k);
    std::vector<int8_t> w8(wcodes.size());
    for (size_t i = 0; i < wcodes.size(); ++i) {
        wcodes[i] = rng.uniformInt(-127, 127);
        w8[i] = static_cast<int8_t>(wcodes[i]);
    }
    std::vector<uint8_t> acts(static_cast<size_t>(row.n) * row.k);
    for (uint8_t &v : acts)
        v = static_cast<uint8_t>(rng.uniformInt(0, 255));
    gemm::PackedIntWeights pw;
    gemm::packWeights(wcodes.data(), row.m, row.k, 8, pw);
    std::vector<int64_t> ci(static_cast<size_t>(row.m) * row.n);
    row.int_serial_ns = timeNs(
        [&] {
            ThreadPool::ScopedSerial guard;
            gemm::igemmTransB(row.m, row.n, row.k, w8.data(), row.k,
                              acts.data(), row.k, ci.data(), row.n, 8,
                              8);
        },
        min_seconds);
    row.int_packed_ns = timeNs(
        [&] {
            gemm::igemmPackedTransB(pw, row.n, acts.data(), row.k,
                                    ci.data(), row.n, 8);
        },
        min_seconds);
    return row;
}

void
writeJson(const std::string &path, const std::vector<GemmRow> &gemms,
          const std::vector<IntGemmRow> &igemms,
          const std::vector<ConvRow> &convs, const std::vector<PgdRow> &pgds,
          const SmallGemmRow &small, bool fast)
{
    const char *tier = gemm::isaTierName(gemm::activeIsaTier());
    std::ofstream out(path);
    out << "{\n  \"meta\": {\"threads\": "
        << ThreadPool::global().threads() << ", \"default_backend\": \""
        << gemm::backendName(gemm::activeBackend()) << "\", \"isa_tier\": \""
        << tier << "\", \"fast\": " << (fast ? "true" : "false") << "},\n";

    out << "  \"gemm\": [\n";
    for (size_t i = 0; i < gemms.size(); ++i) {
        const GemmRow &r = gemms[i];
        out << "    {\"name\": \"" << r.name << "\", \"m\": " << r.m
            << ", \"n\": " << r.n << ", \"k\": " << r.k
            << ", \"naive_ns\": " << jsonNum(r.naive_ns)
            << ", \"blocked_ns\": " << jsonNum(r.blocked_ns)
            << ", \"naive_gflops\": " << jsonNum(r.gflops(r.naive_ns))
            << ", \"blocked_gflops\": " << jsonNum(r.gflops(r.blocked_ns))
            << ", \"speedup\": " << jsonNum(r.naive_ns / r.blocked_ns)
            << "}" << (i + 1 < gemms.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"int_gemm\": [\n";
    for (size_t i = 0; i < igemms.size(); ++i) {
        const IntGemmRow &r = igemms[i];
        out << "    {\"name\": \"" << r.name << "\", \"m\": " << r.m
            << ", \"n\": " << r.n << ", \"k\": " << r.k
            << ", \"bits\": " << r.bits
            << ", \"int_ns\": " << jsonNum(r.int_ns)
            << ", \"gops\": " << jsonNum(r.gops())
            << ", \"float_ns\": " << jsonNum(r.float_ns)
            << ", \"speedup_vs_float\": "
            << jsonNum(r.float_ns / r.int_ns) << ", \"isa_tier\": \""
            << tier << "\"}" << (i + 1 < igemms.size() ? "," : "")
            << "\n";
    }
    out << "  ],\n  \"conv\": [\n";
    for (size_t i = 0; i < convs.size(); ++i) {
        const ConvRow &r = convs[i];
        out << "    {\"name\": \"" << r.name << "\", \"batch\": "
            << r.batch << ", \"fwd_naive_ns\": " << jsonNum(r.fwd_naive_ns)
            << ", \"fwd_blocked_ns\": " << jsonNum(r.fwd_blocked_ns)
            << ", \"fwd_speedup\": "
            << jsonNum(r.fwd_naive_ns / r.fwd_blocked_ns)
            << ", \"bwd_naive_ns\": " << jsonNum(r.bwd_naive_ns)
            << ", \"bwd_blocked_ns\": " << jsonNum(r.bwd_blocked_ns)
            << ", \"bwd_speedup\": "
            << jsonNum(r.bwd_naive_ns / r.bwd_blocked_ns) << "}"
            << (i + 1 < convs.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"pgd\": [\n";
    for (size_t i = 0; i < pgds.size(); ++i) {
        const PgdRow &r = pgds[i];
        out << "    {\"name\": \"" << r.name << "\", \"batch\": "
            << r.batch << ", \"steps\": " << r.steps
            << ", \"step_naive_ns\": " << jsonNum(r.naive_ns)
            << ", \"step_blocked_ns\": " << jsonNum(r.blocked_ns)
            << ", \"speedup\": " << jsonNum(r.naive_ns / r.blocked_ns)
            << "}" << (i + 1 < pgds.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"small_gemm\": {\"m\": " << small.m << ", \"n\": "
        << small.n << ", \"k\": " << small.k << ", \"path\": \""
        << (small.parallel ? "parallel-naive" : "serial-naive")
        << "\", \"serial_ns\": " << jsonNum(small.serial_ns)
        << ", \"light_ns\": " << jsonNum(small.light_ns)
        << ", \"speedup\": " << jsonNum(small.serial_ns / small.light_ns)
        << ", \"int_serial_ns\": " << jsonNum(small.int_serial_ns)
        << ", \"int_packed_ns\": " << jsonNum(small.int_packed_ns)
        << ", \"int_speedup\": "
        << jsonNum(small.int_serial_ns / small.int_packed_ns)
        << "}\n}\n";
}

} // namespace

int
main()
{
    bool fast = bench::fastMode();
    double min_seconds = fast ? 0.05 : 0.25;
    Rng rng(99);
    gemm::Backend default_backend = gemm::activeBackend();

    bench::banner("Kernel microbenchmarks (naive vs blocked backend)");
    std::cout << "threads=" << ThreadPool::global().threads()
              << " default_backend="
              << gemm::backendName(default_backend) << " isa_tier="
              << gemm::isaTierName(gemm::activeIsaTier())
              << (fast ? " (fast mode)" : "") << "\n\n";

    std::vector<GemmRow> gemms;
    std::vector<int> squares = fast ? std::vector<int>{64, 128, 256}
                                    : std::vector<int>{64, 128, 256, 384};
    for (int s : squares)
        gemms.push_back(benchGemmShape(
            "square" + std::to_string(s), s, s, s, min_seconds, rng));
    for (GemmRow &r : modelZooGemmShapes(min_seconds, fast, rng))
        gemms.push_back(r);

    std::printf("%-28s %5s %5s %5s %12s %12s %8s %8s %8s\n", "gemm", "m",
                "n", "k", "naive_ns", "blocked_ns", "naiveGF", "blockGF",
                "speedup");
    for (const GemmRow &r : gemms)
        std::printf("%-28s %5d %5d %5d %12.0f %12.0f %8.2f %8.2f %8.2fx\n",
                    r.name.c_str(), r.m, r.n, r.k, r.naive_ns,
                    r.blocked_ns, r.gflops(r.naive_ns),
                    r.gflops(r.blocked_ns), r.naive_ns / r.blocked_ns);

    std::vector<IntGemmRow> igemms =
        benchIntGemmSweep(min_seconds, fast, rng);
    std::printf("\n%-16s %5s %5s %5s %4s %12s %8s %8s\n", "int_gemm",
                "m", "n", "k", "bits", "int_ns", "GOPS", "vs_float");
    for (const IntGemmRow &r : igemms)
        std::printf("%-16s %5d %5d %5d %4d %12.0f %8.2f %7.2fx\n",
                    r.name.c_str(), r.m, r.n, r.k, r.bits, r.int_ns,
                    r.gops(), r.float_ns / r.int_ns);

    std::vector<ConvCase> conv_cases = {
        {"conv16x16x32", fast ? 4 : 8, 16, 16, 32, 3, 1, 1},
        {"conv32x32x16", fast ? 4 : 8, 32, 32, 16, 3, 1, 1},
        {"conv64x64x8", fast ? 4 : 8, 64, 64, 8, 3, 1, 1},
    };
    std::vector<ConvRow> convs;
    for (const ConvCase &cc : conv_cases)
        convs.push_back(benchConv(cc, min_seconds, rng));

    std::printf("\n%-16s %6s %14s %14s %8s %14s %14s %8s\n", "conv",
                "batch", "fwd_naive", "fwd_blocked", "speedup",
                "bwd_naive", "bwd_blocked", "speedup");
    for (const ConvRow &r : convs)
        std::printf("%-16s %6d %14.0f %14.0f %7.2fx %14.0f %14.0f %7.2fx\n",
                    r.name.c_str(), r.batch, r.fwd_naive_ns,
                    r.fwd_blocked_ns, r.fwd_naive_ns / r.fwd_blocked_ns,
                    r.bwd_naive_ns, r.bwd_blocked_ns,
                    r.bwd_naive_ns / r.bwd_blocked_ns);

    std::vector<PgdRow> pgds;
    pgds.push_back(benchPgd(min_seconds, fast, rng));
    std::printf("\n%-20s %6s %6s %14s %14s %8s\n", "pgd", "batch", "steps",
                "step_naive", "step_blocked", "speedup");
    for (const PgdRow &r : pgds)
        std::printf("%-20s %6d %6d %14.0f %14.0f %7.2fx\n", r.name.c_str(),
                    r.batch, r.steps, r.naive_ns, r.blocked_ns,
                    r.naive_ns / r.blocked_ns);

    gemm::setActiveBackend(default_backend);
    SmallGemmRow small = benchSmallGemm(min_seconds, rng);
    std::printf("\n%-20s %5d %5d %5d path=%s serial=%0.f ns light=%0.f ns "
                "(%.2fx) int_serial=%0.f ns int_packed=%0.f ns (%.2fx)\n",
                "small_gemm", small.m, small.n, small.k,
                small.parallel ? "parallel-naive" : "serial-naive",
                small.serial_ns, small.light_ns,
                small.serial_ns / small.light_ns, small.int_serial_ns,
                small.int_packed_ns,
                small.int_serial_ns / small.int_packed_ns);

    writeJson("BENCH_kernels.json", gemms, igemms, convs, pgds, small,
              fast);
    std::cout << "\nwrote BENCH_kernels.json\n";
    return 0;
}
