/**
 * @file
 * Paper Tab. 1: RPS on top of FGSM / FGSM-RS / PGD-7 adversarial
 * training, CIFAR-10 (stand-in), two networks, natural + PGD-20 +
 * PGD-100 robust accuracy. Expected shape: +RPS rows beat their
 * baselines on robust accuracy (paper: +13.57% ~ +22.60% on
 * PreActResNet-18, +5 ~ +12% on WideResNet-32) at comparable natural
 * accuracy.
 */

#include "adversarial/pgd.hh"
#include "bench_util.hh"

using namespace twoinone;

namespace {

struct Row
{
    std::string method;
    double natural;
    double pgd20;
    double pgd100;
};

Row
evaluateModel(const std::string &label, Network &model, bool rps,
              const Dataset &eval, const PrecisionSet &set, Rng &rng)
{
    PgdAttack pgd20(AttackConfig::fromEps255(8.0f, 2.0f, 20));
    PgdAttack pgd100(AttackConfig::fromEps255(8.0f, 2.0f, 100));
    Row row;
    row.method = label;
    if (rps) {
        row.natural = rpsNaturalAccuracy(model, eval, set, rng);
        row.pgd20 = rpsRobustAccuracy(model, pgd20, eval, set, rng);
        row.pgd100 = rpsRobustAccuracy(model, pgd100, eval, set, rng);
    } else {
        row.natural = naturalAccuracy(model, eval);
        row.pgd20 = bench::baselineRobust(model, pgd20, eval, rng);
        row.pgd100 = bench::baselineRobust(model, pgd100, eval, rng);
    }
    return row;
}

void
runNetwork(const std::string &net_name, bool wide,
           const DatasetPair &data, const Dataset &eval,
           const PrecisionSet &set)
{
    bench::banner("Tab. 1 — " + net_name + " on CIFAR-10 (stand-in)");
    TablePrinter table;
    table.header({"Training", "Natural(%)", "PGD-20(%)", "PGD-100(%)"});

    const std::pair<TrainMethod, std::string> methods[] = {
        {TrainMethod::Fgsm, "FGSM"},
        {TrainMethod::FgsmRs, "FGSM-RS"},
        {TrainMethod::Pgd7, "PGD-7"},
    };
    uint64_t seed = wide ? 400 : 300;
    for (const auto &[method, name] : methods) {
        for (bool rps : {false, true}) {
            Rng init(seed);
            Rng eval_rng(seed + 7);
            Network model =
                wide ? bench::makeWideMini(set, 10, init)
                     : bench::makePreActMini(set, 10, init);
            model = bench::trainModel(std::move(model), method, rps,
                                      data.train, seed + 13);
            Row row = evaluateModel(name + (rps ? "+RPS" : ""), model,
                                    rps, eval, set, eval_rng);
            table.row({row.method, formatFixed(row.natural, 2),
                       formatFixed(row.pgd20, 2),
                       formatFixed(row.pgd100, 2)});
            ++seed;
        }
    }
    table.print();
}

} // namespace

int
main()
{
    bench::banner("Tab. 1 — RPS vs adversarial-training baselines");
    bench::scaleNote();
    std::cout << "paper reference: RPS adds +13.57%~+22.60% PGD-20 "
                 "robust accuracy on PreActResNet-18\n";

    PrecisionSet set = PrecisionSet::rps4to16();
    DatasetPair data = makeCifar10Like(bench::fastMode() ? 0.35 : 0.6);
    Dataset eval = data.test.batch(0, bench::scaled(96));

    runNetwork("PreActResNet-18 (mini)", /*wide=*/false, data, eval,
               set);
    runNetwork("WideResNet-32 (mini)", /*wide=*/true, data, eval, set);
    return 0;
}
