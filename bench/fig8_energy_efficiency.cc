/**
 * @file
 * Paper Fig. 8: normalized energy efficiency (inferences per Joule)
 * of the three accelerators on six networks at {2,4,8,16}-bit,
 * normalized to Bit Fusion, with energy-optimized dataflows.
 * Expected shape: ours 1.9x~7.6x over Bit Fusion; Stripes also beats
 * Bit Fusion once its dataflow is optimized.
 */

#include "bench_util.hh"
#include "optimizer/evolutionary.hh"
#include "workloads/model_library.hh"

using namespace twoinone;

namespace {

double
optimizedIpj(const Accelerator &accel, const NetworkWorkload &net, int q)
{
    EvoConfig cfg;
    cfg.populationSize = bench::fastMode() ? 10 : 20;
    cfg.totalCycles = bench::fastMode() ? 3 : 6;
    cfg.objective = Objective::Energy;
    cfg.seed = 4321;
    std::vector<Dataflow> dfs =
        optimizeNetworkDataflows(accel, net, q, q, cfg);
    NetworkPrediction np =
        accel.predictor().predictNetwork(net, q, q, dfs);
    return np.inferencesPerJoule(1);
}

} // namespace

int
main()
{
    bench::banner(
        "Fig. 8 — normalized energy efficiency (BitFusion = 1.0)");
    const TechModel &tech = TechModel::defaults();
    double budget = Accelerator::defaultAreaBudget();
    Accelerator ours(AcceleratorKind::TwoInOne, budget, tech);
    Accelerator stripes(AcceleratorKind::Stripes, budget, tech);
    Accelerator bf(AcceleratorKind::BitFusion, budget, tech);

    auto suite = workloads::benchmarkSuite();
    double worst = 1e30, best = 0.0;
    for (int q : {2, 4, 8, 16}) {
        bench::banner("Fig. 8 — " + std::to_string(q) + "-bit x " +
                      std::to_string(q) + "-bit");
        TablePrinter table;
        table.header({"network", "BitFusion", "Stripes", "Ours"});
        for (const NetworkWorkload &net : suite) {
            double e_bf = optimizedIpj(bf, net, q);
            double e_st = optimizedIpj(stripes, net, q);
            double e_ours = optimizedIpj(ours, net, q);
            table.row({net.name, "1.00", formatFixed(e_st / e_bf, 2),
                       formatFixed(e_ours / e_bf, 2)});
            worst = std::min(worst, e_ours / e_bf);
            best = std::max(best, e_ours / e_bf);
        }
        table.print();
    }
    std::cout << "ours vs BitFusion across the grid: "
              << formatFixed(worst, 2) << "x ~ " << formatFixed(best, 2)
              << "x (paper: 1.91x ~ 7.58x)\n";
    return 0;
}
