/**
 * @file
 * Paper Tab. 6: the customized adaptive attack E-PGD, which attacks
 * the ensemble over all candidate precisions (the adversary knows the
 * RPS set). Expected shape: PGD-7+RPS still beats PGD-7 by a clear
 * margin (paper: >= +8.97% on CIFAR-10, >= +9.61% on CIFAR-100).
 */

#include "adversarial/epgd.hh"
#include "bench_util.hh"

using namespace twoinone;

namespace {

void
runDataset(const std::string &name, const DatasetPair &data,
           uint64_t seed)
{
    bench::banner("Tab. 6 — PreActResNet-18 (mini) on " + name);
    PrecisionSet set = PrecisionSet::rps4to16();
    Dataset eval = data.test.batch(
        0, std::min(data.test.size(), bench::scaled(64)));
    const int classes = data.train.numClasses;

    Rng init(seed);
    Network base = bench::makePreActMini(set, classes, init);
    Network rps = bench::makePreActMini(set, classes, init);
    base = bench::trainModel(std::move(base), TrainMethod::Pgd7, false,
                             data.train, seed + 1);
    rps = bench::trainModel(std::move(rps), TrainMethod::Pgd7, true,
                            data.train, seed + 2);

    int steps_long = bench::fastMode() ? 50 : 100;
    EpgdAttack epgd20(AttackConfig::fromEps255(8.0f, 2.0f, 20), set);
    EpgdAttack epgd100(
        AttackConfig::fromEps255(8.0f, 2.0f, steps_long), set);

    TablePrinter table;
    table.header({"Training", "Natural(%)", "E-PGD-20(%)",
                  "E-PGD-" + std::to_string(steps_long) + "(%)"});

    Rng r1(seed + 7), r2(seed + 7);
    table.row({"PGD-7", formatFixed(naturalAccuracy(base, eval), 2),
               formatFixed(
                   bench::baselineRobust(base, epgd20, eval, r1), 2),
               formatFixed(
                   bench::baselineRobust(base, epgd100, eval, r1), 2)});
    table.row(
        {"PGD-7+RPS",
         formatFixed(rpsNaturalAccuracy(rps, eval, set, r2), 2),
         formatFixed(rpsRobustAccuracy(rps, epgd20, eval, set, r2), 2),
         formatFixed(rpsRobustAccuracy(rps, epgd100, eval, set, r2),
                     2)});
    table.print();
}

} // namespace

int
main()
{
    bench::banner("Tab. 6 — adaptive E-PGD (adversary knows the set)");
    bench::scaleNote();
    runDataset("CIFAR-10 (stand-in)",
               makeCifar10Like(bench::fastMode() ? 0.25 : 0.7), 910);
    runDataset("CIFAR-100 (stand-in)",
               makeCifar100Like(bench::fastMode() ? 0.25 : 0.7), 920);
    std::cout << "paper reference: RPS keeps >= +8.97% robust accuracy "
                 "under E-PGD\n";
    return 0;
}
