/**
 * @file
 * Paper Tab. 2: RPS on CIFAR-100 (stand-in, 20-class synthetic) with
 * FGSM-RS and PGD-7 on both networks. Expected shape: +RPS rows gain
 * ~+9% ~ +14% PGD-20 robust accuracy over their baselines.
 */

#include "adversarial/pgd.hh"
#include "bench_util.hh"

using namespace twoinone;

int
main()
{
    bench::banner("Tab. 2 — RPS on CIFAR-100 (stand-in)");
    bench::scaleNote();

    PrecisionSet set = PrecisionSet::rps4to16();
    DatasetPair data = makeCifar100Like(bench::fastMode() ? 0.3 : 0.5);
    Dataset eval = data.test.batch(0, bench::scaled(96));
    const int classes = data.train.numClasses;

    PgdAttack pgd20(AttackConfig::fromEps255(8.0f, 2.0f, 20));
    PgdAttack pgd100(AttackConfig::fromEps255(8.0f, 2.0f, 100));

    const std::pair<TrainMethod, std::string> methods[] = {
        {TrainMethod::FgsmRs, "FGSM-RS"},
        {TrainMethod::Pgd7, "PGD-7"},
    };

    for (bool wide : {false, true}) {
        bench::banner(std::string("Tab. 2 — ") +
                      (wide ? "WideResNet-32 (mini)"
                            : "PreActResNet-18 (mini)"));
        TablePrinter table;
        table.header(
            {"Training", "Natural(%)", "PGD-20(%)", "PGD-100(%)"});
        uint64_t seed = wide ? 520 : 510;
        for (const auto &[method, name] : methods) {
            for (bool rps : {false, true}) {
                Rng init(seed);
                Rng eval_rng(seed + 3);
                Network model =
                    wide ? bench::makeWideMini(set, classes, init)
                         : bench::makePreActMini(set, classes, init);
                model = bench::trainModel(std::move(model), method, rps,
                                          data.train, seed + 5);
                double nat, p20, p100;
                if (rps) {
                    nat = rpsNaturalAccuracy(model, eval, set, eval_rng);
                    p20 = rpsRobustAccuracy(model, pgd20, eval, set,
                                            eval_rng);
                    p100 = rpsRobustAccuracy(model, pgd100, eval, set,
                                             eval_rng);
                } else {
                    nat = naturalAccuracy(model, eval);
                    p20 = bench::baselineRobust(model, pgd20, eval,
                                                eval_rng);
                    p100 = bench::baselineRobust(model, pgd100, eval,
                                                 eval_rng);
                }
                table.row({name + (rps ? "+RPS" : ""),
                           formatFixed(nat, 2), formatFixed(p20, 2),
                           formatFixed(p100, 2)});
                ++seed;
            }
        }
        table.print();
    }
    return 0;
}
