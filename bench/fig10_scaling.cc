/**
 * @file
 * Paper Fig. 10: throughput across execution precisions 1-16 of all
 * three accelerators on WideResNet-32 (CIFAR) and ResNet-50
 * (ImageNet). Expected shape: ours on top at every precision (up to
 * 4.4x), improving consistently as the precision drops; Bit Fusion
 * staircases and collapses above 8-bit; Stripes scales smoothly.
 */

#include "bench_util.hh"
#include "optimizer/evolutionary.hh"
#include "workloads/model_library.hh"

using namespace twoinone;

namespace {

double
optimizedFps(const Accelerator &accel, const NetworkWorkload &net, int q)
{
    EvoConfig cfg;
    cfg.populationSize = bench::fastMode() ? 8 : 16;
    cfg.totalCycles = bench::fastMode() ? 2 : 5;
    cfg.objective = Objective::Latency;
    cfg.seed = 777;
    std::vector<Dataflow> dfs =
        optimizeNetworkDataflows(accel, net, q, q, cfg);
    return accel.predictor()
        .predictNetwork(net, q, q, dfs)
        .fps(TechModel::defaults().clockGhz, 1);
}

void
runNetwork(const NetworkWorkload &net)
{
    bench::banner("Fig. 10 — " + net.name + " (FPS)");
    const TechModel &tech = TechModel::defaults();
    double budget = Accelerator::defaultAreaBudget();
    Accelerator ours(AcceleratorKind::TwoInOne, budget, tech);
    Accelerator stripes(AcceleratorKind::Stripes, budget, tech);
    Accelerator bf(AcceleratorKind::BitFusion, budget, tech);

    TablePrinter table;
    table.header({"precision", "BitFusion", "Stripes", "Ours",
                  "Ours/best-baseline"});
    for (int q = 1; q <= 16; ++q) {
        double f_bf = optimizedFps(bf, net, q);
        double f_st = optimizedFps(stripes, net, q);
        double f_ours = optimizedFps(ours, net, q);
        double best = std::max(f_bf, f_st);
        table.row({std::to_string(q) + "b", formatFixed(f_bf, 1),
                   formatFixed(f_st, 1), formatFixed(f_ours, 1),
                   formatFixed(f_ours / best, 2)});
    }
    table.print();
}

} // namespace

int
main()
{
    bench::banner("Fig. 10 — throughput vs execution precision");
    runNetwork(workloads::wideResNet32Cifar());
    runNetwork(workloads::resNet50());
    std::cout << "paper reference: ours consistently on top, up to "
                 "4.42x, >1.82x below 8-bit, >1.15x over Stripes at "
                 "16-bit\n";
    return 0;
}
