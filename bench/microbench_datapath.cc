/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot paths: the
 * bit-true MAC datapaths (per precision) and the performance
 * predictor (the inner loop of the evolutionary optimizer, queried
 * thousands of times per Alg. 2 search).
 */

#include <benchmark/benchmark.h>

#include "accel/accelerator.hh"
#include "accel/bitserial.hh"
#include "workloads/model_library.hh"

namespace {

using namespace twoinone;

void
BM_BitSerialMultiply(benchmark::State &state)
{
    int bits = static_cast<int>(state.range(0));
    BitSerialMultiplier unit(bits);
    int qmax = (1 << (bits - 1)) - 1;
    int64_t a = qmax, b = -qmax;
    for (auto _ : state) {
        benchmark::DoNotOptimize(unit.multiply(a, b));
        a = -a;
    }
}
BENCHMARK(BM_BitSerialMultiply)->Arg(2)->Arg(4)->Arg(8);

void
BM_ComposeSpatial(benchmark::State &state)
{
    int bits = static_cast<int>(state.range(0));
    int qmax = (1 << (bits - 1)) - 1;
    int64_t a = qmax, b = qmax - 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(composeSpatial(a, b, bits));
        a = -a;
    }
}
BENCHMARK(BM_ComposeSpatial)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void
BM_GroupedMacReduce(benchmark::State &state)
{
    int bits = static_cast<int>(state.range(0));
    int qmax = (1 << (bits - 1)) - 1;
    GroupedMacDatapath mac(4);
    std::vector<int64_t> a = {qmax, -qmax, qmax / 2, 1};
    std::vector<int64_t> b = {1, qmax, -qmax / 2, qmax};
    for (auto _ : state)
        benchmark::DoNotOptimize(mac.macReduce(a, b, bits));
}
BENCHMARK(BM_GroupedMacReduce)->Arg(4)->Arg(8)->Arg(16);

void
BM_PredictLayer(benchmark::State &state)
{
    const TechModel &tech = TechModel::defaults();
    Accelerator accel(AcceleratorKind::TwoInOne,
                      Accelerator::defaultAreaBudget(), tech);
    NetworkWorkload net = workloads::resNet50();
    const ConvShape &layer = net.layers[20];
    Dataflow df = Dataflow::greedyDefault(layer, accel.numUnits());
    for (auto _ : state) {
        benchmark::DoNotOptimize(accel.runLayer(layer, 4, 4, df));
    }
}
BENCHMARK(BM_PredictLayer);

void
BM_PredictNetwork(benchmark::State &state)
{
    const TechModel &tech = TechModel::defaults();
    Accelerator accel(AcceleratorKind::TwoInOne,
                      Accelerator::defaultAreaBudget(), tech);
    NetworkWorkload net = workloads::resNet50();
    for (auto _ : state)
        benchmark::DoNotOptimize(accel.run(net, 4, 4));
}
BENCHMARK(BM_PredictNetwork);

} // namespace

BENCHMARK_MAIN();
