/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot paths: the
 * bit-true MAC datapaths (per precision), the integer GEMM kernels
 * and the quantized forward of the int-code execution path, and the
 * performance predictor (the inner loop of the evolutionary
 * optimizer, queried thousands of times per Alg. 2 search).
 *
 * The machine-readable quantized-forward ns/op and int-GEMM GOPS
 * live in BENCH_rps.json, written by microbench_rps (the harness
 * that owns that file and its CI regression gate); the entries here
 * are the interactive/profiling view of the same paths.
 */

#include <benchmark/benchmark.h>

#include "accel/accelerator.hh"
#include "accel/bitserial.hh"
#include "nn/model_zoo.hh"
#include "quant/calibration.hh"
#include "quant/rps_engine.hh"
#include "tensor/gemm.hh"
#include "workloads/model_library.hh"

namespace {

using namespace twoinone;

void
BM_BitSerialMultiply(benchmark::State &state)
{
    int bits = static_cast<int>(state.range(0));
    BitSerialMultiplier unit(bits);
    int qmax = (1 << (bits - 1)) - 1;
    int64_t a = qmax, b = -qmax;
    for (auto _ : state) {
        benchmark::DoNotOptimize(unit.multiply(a, b));
        a = -a;
    }
}
BENCHMARK(BM_BitSerialMultiply)->Arg(2)->Arg(4)->Arg(8);

void
BM_ComposeSpatial(benchmark::State &state)
{
    int bits = static_cast<int>(state.range(0));
    int qmax = (1 << (bits - 1)) - 1;
    int64_t a = qmax, b = qmax - 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(composeSpatial(a, b, bits));
        a = -a;
    }
}
BENCHMARK(BM_ComposeSpatial)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void
BM_GroupedMacReduce(benchmark::State &state)
{
    int bits = static_cast<int>(state.range(0));
    int qmax = (1 << (bits - 1)) - 1;
    GroupedMacDatapath mac(4);
    std::vector<int64_t> a = {qmax, -qmax, qmax / 2, 1};
    std::vector<int64_t> b = {1, qmax, -qmax / 2, qmax};
    for (auto _ : state)
        benchmark::DoNotOptimize(mac.macReduce(a, b, bits));
}
BENCHMARK(BM_GroupedMacReduce)->Arg(4)->Arg(8)->Arg(16);

void
BM_IntGemm(benchmark::State &state)
{
    // The int16 x uint16 code kernel of the quantized forward
    // (ns/op and items_processed -> GOPS in the counters).
    int s = static_cast<int>(state.range(0));
    Rng rng(5);
    std::vector<int16_t> a(static_cast<size_t>(s) * s);
    std::vector<uint16_t> b(static_cast<size_t>(s) * s);
    for (auto &v : a)
        v = static_cast<int16_t>(rng.uniformInt(-127, 127));
    for (auto &v : b)
        v = static_cast<uint16_t>(rng.uniformInt(0, 255));
    std::vector<int64_t> c(static_cast<size_t>(s) * s);
    for (auto _ : state) {
        gemm::igemmTransB(s, s, s, a.data(), s, b.data(), s, c.data(), s,
                          8, 8);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * 2 *
                            static_cast<int64_t>(s) * s * s);
}
BENCHMARK(BM_IntGemm)->Arg(64)->Arg(128)->Arg(256);

void
BM_QuantizedForward(benchmark::State &state)
{
    // Cached + calibrated integer forward (the quantized execution
    // path), per batch. Mirrors the BENCH_rps.json quant_forward rows.
    int bits = static_cast<int>(state.range(0));
    Rng rng(2024);
    ModelConfig mcfg;
    mcfg.baseWidth = 8;
    Network net = preActResNetMini(mcfg, rng);
    Rng data_rng(7);
    Tensor x = Tensor::uniform({4, 3, 8, 8}, data_rng, 0.0f, 1.0f);
    Calibrator cal(net);
    cal.calibrate({x});
    RpsEngine engine(net);
    engine.setPrecision(bits);
    for (auto _ : state)
        benchmark::DoNotOptimize(net.forwardQuantized(x));
}
BENCHMARK(BM_QuantizedForward)->Arg(4)->Arg(8)->Arg(16);

void
BM_PredictLayer(benchmark::State &state)
{
    const TechModel &tech = TechModel::defaults();
    Accelerator accel(AcceleratorKind::TwoInOne,
                      Accelerator::defaultAreaBudget(), tech);
    NetworkWorkload net = workloads::resNet50();
    const ConvShape &layer = net.layers[20];
    Dataflow df = Dataflow::greedyDefault(layer, accel.numUnits());
    for (auto _ : state) {
        benchmark::DoNotOptimize(accel.runLayer(layer, 4, 4, df));
    }
}
BENCHMARK(BM_PredictLayer);

void
BM_PredictNetwork(benchmark::State &state)
{
    const TechModel &tech = TechModel::defaults();
    Accelerator accel(AcceleratorKind::TwoInOne,
                      Accelerator::defaultAreaBudget(), tech);
    NetworkWorkload net = workloads::resNet50();
    for (auto _ : state)
        benchmark::DoNotOptimize(accel.run(net, 4, 4));
}
BENCHMARK(BM_PredictNetwork);

} // namespace

BENCHMARK_MAIN();
