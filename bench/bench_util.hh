/**
 * @file
 * Shared helpers for the paper-reproduction bench binaries: training
 * recipes at bench scale, evaluation wrappers, and table formatting.
 *
 * Scale note: every algorithm bench trains the DESIGN.md §1 stand-in
 * models on the synthetic datasets at laptop scale. Absolute
 * accuracies therefore differ from the paper; the quantity each bench
 * reproduces is the *shape* — the sign and rough magnitude of the
 * RPS-vs-baseline gaps. Set TWOINONE_BENCH_FAST=1 to shrink every
 * workload ~2x for smoke runs.
 */

#ifndef TWOINONE_BENCH_BENCH_UTIL_HH
#define TWOINONE_BENCH_BENCH_UTIL_HH

#include <cstdlib>
#include <iostream>
#include <string>

#include "adversarial/evaluation.hh"
#include "adversarial/trainer.hh"
#include "common/stats.hh"
#include "nn/model_zoo.hh"

namespace twoinone {
namespace bench {

/** True when TWOINONE_BENCH_FAST=1 is set. */
inline bool
fastMode()
{
    const char *v = std::getenv("TWOINONE_BENCH_FAST");
    return v != nullptr && std::string(v) == "1";
}

/** Scale a sample count by the fast-mode factor. */
inline int
scaled(int n)
{
    return fastMode() ? std::max(32, n / 2) : n;
}

/** Bench-scale training hyper-parameters. */
inline TrainConfig
benchTrainConfig(TrainMethod method, bool rps, uint64_t seed)
{
    TrainConfig cfg;
    cfg.method = method;
    cfg.rps = rps;
    // RPS splits its training iterations across the candidate
    // precisions, so it needs more epochs to converge every SBN bank
    // (the paper trains all methods to convergence).
    cfg.epochs = (fastMode() ? 2 : 6) * (rps ? 2 : 1);
    cfg.batchSize = 64;
    cfg.lr = 0.08f;
    cfg.eps = 8.0f / 255.0f;
    cfg.alpha = 2.0f / 255.0f;
    cfg.seed = seed;
    return cfg;
}

/** The two CIFAR-scale model stand-ins used by Tabs. 1-3. */
inline Network
makePreActMini(const PrecisionSet &set, int num_classes, Rng &rng)
{
    ModelConfig cfg;
    cfg.baseWidth = 4;
    cfg.numClasses = num_classes;
    cfg.precisions = set;
    return preActResNetMini(cfg, rng);
}

inline Network
makeWideMini(const PrecisionSet &set, int num_classes, Rng &rng)
{
    ModelConfig cfg;
    cfg.baseWidth = 4;
    cfg.numClasses = num_classes;
    cfg.precisions = set;
    return wideResNetMini(cfg, rng);
}

/**
 * Train a model with a method, optionally RPS-equipped, and return
 * it. Baselines (rps = false) train at full precision, matching the
 * paper's full-precision adversarial-training baselines.
 */
inline Network
trainModel(Network model, TrainMethod method, bool rps,
           const Dataset &train, uint64_t seed)
{
    Trainer trainer(model, benchTrainConfig(method, rps, seed));
    trainer.fit(train);
    model.setPrecision(0);
    return model;
}

/** Robust accuracy of a baseline model (attacked and evaluated at
 * full precision, the paper's baseline protocol). */
inline double
baselineRobust(Network &model, Attack &attack, const Dataset &data,
               Rng &rng)
{
    return robustAccuracy(model, attack, data, 0, 0, rng);
}

/** Print a section banner. */
inline void
banner(const std::string &title)
{
    std::cout << "\n=== " << title << " ===\n";
}

/** Print the standard scale disclaimer once per bench. */
inline void
scaleNote()
{
    std::cout << "(laptop-scale reproduction: synthetic datasets + "
                 "mini models; compare shapes, not absolute values — "
                 "see DESIGN.md)\n";
}

} // namespace bench
} // namespace twoinone

#endif // TWOINONE_BENCH_BENCH_UTIL_HH
