/**
 * @file
 * Paper Fig. 3: area breakdown of the MAC units of the temporal
 * design, the spatial design (Bit Fusion) and the proposed
 * spatial-temporal design. Reference fractions (shift-add):
 * 60.9% / 67.0% / 39.7%.
 */

#include "accel/spatial_mac.hh"
#include "accel/spatial_temporal_mac.hh"
#include "accel/temporal_mac.hh"
#include "bench_util.hh"

using namespace twoinone;

int
main()
{
    bench::banner("Fig. 3 — MAC-unit area breakdown");
    TemporalMacModel temporal;
    SpatialMacModel spatial;
    SpatialTemporalMacModel ours;

    TablePrinter table;
    table.header({"design", "multiplier(%)", "shift-add(%)",
                  "register(%)", "total(norm)"});
    const MacUnitModel *models[] = {&temporal, &spatial, &ours};
    for (const MacUnitModel *m : models) {
        MacAreaBreakdown a = m->area();
        double t = a.total();
        table.row({m->name(), formatFixed(100.0 * a.multiplier / t, 1),
                   formatFixed(100.0 * a.shiftAdd / t, 1),
                   formatFixed(100.0 * a.registers / t, 1),
                   formatFixed(t, 2)});
    }
    table.print();
    std::cout << "paper reference: shift-add 60.9% (temporal) / 67.0% "
                 "(spatial) / 39.7% (ours)\n";
    return 0;
}
