/**
 * @file
 * Paper Fig. 1: transferability of adversarial attacks between
 * precisions. Rows = attack precision, columns = inference precision,
 * cells = robust accuracy (%). Reproduces panels:
 *  (a) FGSM-RS training, PGD attack
 *  (b) PGD-7 training, CW-Inf attack
 *  (c) PGD-7 training, PGD attack
 *  (d) PGD-7 + RPS training, PGD attack
 * Expected shape: off-diagonal >> diagonal (poor transferability),
 * and (d) shows larger robust gaps than (c).
 */

#include "adversarial/cw.hh"
#include "adversarial/pgd.hh"
#include "bench_util.hh"

using namespace twoinone;

namespace {

void
printMatrix(const std::string &title, Network &model, Attack &attack,
            const Dataset &data, const PrecisionSet &set, Rng &rng)
{
    bench::banner(title);
    auto m = transferMatrix(model, attack, data, set, rng,
                            /*batch=*/48);
    TablePrinter table;
    std::vector<std::string> header = {"attack\\infer"};
    for (int q : set.bits())
        header.push_back(std::to_string(q) + "b");
    table.header(header);
    double diag = 0.0, off = 0.0;
    size_t k = set.size();
    for (size_t i = 0; i < k; ++i) {
        std::vector<std::string> row = {std::to_string(set.bits()[i]) +
                                        "b"};
        for (size_t j = 0; j < k; ++j) {
            row.push_back(formatFixed(m[i][j], 1));
            if (i == j)
                diag += m[i][j];
            else
                off += m[i][j];
        }
        table.row(row);
    }
    table.print();
    diag /= static_cast<double>(k);
    off /= static_cast<double>(k * (k - 1));
    std::cout << "diagonal mean " << formatFixed(diag, 1)
              << "%  off-diagonal mean " << formatFixed(off, 1)
              << "%  transfer gap " << formatFixed(off - diag, 1)
              << "% (paper: strongly positive)\n";
}

} // namespace

int
main()
{
    bench::banner("Fig. 1 — attack transferability across precisions");
    bench::scaleNote();

    PrecisionSet train_set = PrecisionSet::rps4to16();
    PrecisionSet matrix_set({4, 6, 8, 16}); // sub-grid for runtime
    DatasetPair data = makeCifar10Like(bench::fastMode() ? 0.35 : 0.6);
    Dataset eval = data.test.batch(0, bench::scaled(96));

    Rng init(21);
    Rng attack_rng(22);

    AttackConfig pgd_cfg = AttackConfig::fromEps255(8.0f, 2.0f, 20);
    PgdAttack pgd20(pgd_cfg);
    CwInfAttack cw(AttackConfig::fromEps255(8.0f, 2.0f, 20));

    // (a) FGSM-RS trained, PGD-20 attack.
    Network fgsm_rs =
        bench::trainModel(bench::makePreActMini(train_set, 10, init),
                          TrainMethod::FgsmRs, /*rps=*/false, data.train,
                          31);
    printMatrix("(a) FGSM-RS trained / PGD-20 attack", fgsm_rs, pgd20,
                eval, matrix_set, attack_rng);

    // (b)+(c) PGD-7 trained, CW-Inf and PGD-20 attacks.
    Network pgd7 =
        bench::trainModel(bench::makePreActMini(train_set, 10, init),
                          TrainMethod::Pgd7, /*rps=*/false, data.train,
                          32);
    printMatrix("(b) PGD-7 trained / CW-Inf attack", pgd7, cw, eval,
                matrix_set, attack_rng);
    printMatrix("(c) PGD-7 trained / PGD-20 attack", pgd7, pgd20, eval,
                matrix_set, attack_rng);

    // (d) PGD-7 + RPS trained, PGD-20 attack.
    Network rps =
        bench::trainModel(bench::makePreActMini(train_set, 10, init),
                          TrainMethod::Pgd7, /*rps=*/true, data.train, 33);
    printMatrix("(d) PGD-7 + RPS trained / PGD-20 attack", rps, pgd20,
                eval, matrix_set, attack_rng);

    return 0;
}
