/**
 * @file
 * Open-loop load generator for the asynchronous serving front-end
 * (serve::Server) — the ISSUE 7 tentpole benchmark.
 *
 * Measures, against one preact_mini tenant:
 *
 *  1. serial_qps — the synchronous ServingRuntime drained under
 *     ThreadPool::ScopedSerial: the single-thread reference the
 *     paper-style RPS pipeline had before the event loop.
 *  2. async_qps — the Server at saturation (a pre-filled backlog,
 *     flushed): dispatcher thread + pool-sharded micro-batches.
 *     scaling = async_qps / serial_qps.
 *  3. An open-loop Poisson sweep: offered rows/s laddered up to and
 *     past the measured saturation point. Arrivals are scheduled from
 *     seeded exponential inter-arrival draws and submitted at their
 *     wall-clock times regardless of completions (open loop — queueing
 *     delay is allowed to blow up, which is what exposes the knee).
 *     Each point reports achieved throughput, exact sorted-latency
 *     p50/p99/p99.9, and the shed rate (admission-control drops plus
 *     deadline expiries). The knee is the highest offered point that
 *     still achieves >= 90% of its offered load.
 *
 *  4. serve_tuned — the serving autotuner (tune::autotune) run
 *     against the same model, then the winner's configuration
 *     measured with the identical backlog-flush method as the
 *     defaults (best of three runs each, adjacent in time):
 *     speedup_vs_default = tuned_qps / default_qps, plus one
 *     open-loop Poisson point at 80% of the default's sustained
 *     throughput under each configuration for the iso-QPS p99
 *     comparison. The winner is carried through the production
 *     path — applyGenome for the session-scoped knobs,
 *     Server::addTenant adopting the server-scoped ones from the
 *     tenant's TuningArtifact.
 *
 * Results merge into BENCH_rps.json as "serve_async" and
 * "serve_tuned" sections (the file written by microbench_rps is
 * parsed and re-emitted with the sections replaced), tracked per PR
 * by ci/check_bench_regression.py via serve_async.scaling and
 * serve_tuned.speedup_vs_default.
 *
 * JSON schema:
 *   serve_async: {
 *     threads, rows_per_request,
 *     serial_qps, async_qps, scaling, knee_qps,
 *     sweep: [ { offered_qps, achieved_qps, p50_us, p99_us,
 *                p999_us, shed_rate } ]
 *   }
 *   serve_tuned: {
 *     threads, default_qps, tuned_qps, speedup_vs_default,
 *     iso_qps, default_p99_us, tuned_p99_us, p99_improvement_pct,
 *     predicted_cost, candidates, evaluated, mean_error_pct,
 *     genome: { max_batch, micro_batch, max_delay_us, replicas,
 *               policy, draw_bits, draw_weights }
 *   }
 *
 * Exits non-zero when (with >= 4 pool threads on >= 4 hardware cores)
 * the async server does not scale >= 1.5x over the serial drain, when
 * the sweep sheds requests below half the measured saturation
 * throughput (shedding while underloaded means admission control or
 * deadlines are misfiring), or when the autotuned configuration
 * neither sustains >= 1.15x the default configuration's QPS nor cuts
 * the iso-QPS p99 by >= 15%.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <future>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "common/thread_pool.hh"
#include "harness/json.hh"
#include "quant/calibration.hh"
#include "quant/rps_engine.hh"
#include "serve/server.hh"
#include "serve/session.hh"
#include "tune/autotuner.hh"
#include "workloads/model_library.hh"

namespace {

using namespace twoinone;
using WClock = std::chrono::steady_clock;

struct SweepPoint
{
    double offeredQps = 0.0;  ///< offered rows/s
    double achievedQps = 0.0; ///< served rows/s of the run window
    double p50Us = 0.0;
    double p99Us = 0.0;
    double p999Us = 0.0;
    double shedRate = 0.0; ///< shed requests / offered requests
};

/** Exact quantile of an already sorted latency vector. */
double
quantile(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    double pos = q * static_cast<double>(sorted.size() - 1);
    size_t lo = static_cast<size_t>(pos);
    size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = pos - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

/** One open-loop Poisson point: schedule arrivals at the offered
 * rate, submit each at its wall-clock time, then flush and account. */
SweepPoint
runPoint(serve::Server &server, serve::Server::TenantId tenant,
         const std::vector<Tensor> &pool, int n_requests,
         int rows_per_request, double offered_qps, uint64_t seed)
{
    Rng rng(seed);
    double req_per_s =
        offered_qps / static_cast<double>(rows_per_request);
    std::vector<double> arrival_s(static_cast<size_t>(n_requests));
    double t = 0.0;
    for (int i = 0; i < n_requests; ++i) {
        // Inverse-CDF exponential inter-arrival (u in (0,1]).
        double u = 1.0 - rng.uniform();
        t += -std::log(u) / req_per_s;
        arrival_s[static_cast<size_t>(i)] = t;
    }

    std::vector<std::future<serve::Reply>> futs;
    futs.reserve(static_cast<size_t>(n_requests));
    uint64_t admission_shed = 0;
    WClock::time_point start = WClock::now();
    for (int i = 0; i < n_requests; ++i) {
        std::this_thread::sleep_until(
            start + std::chrono::duration_cast<WClock::duration>(
                        std::chrono::duration<double>(
                            arrival_s[static_cast<size_t>(i)])));
        try {
            futs.push_back(server.submit(
                tenant, pool[static_cast<size_t>(i) % pool.size()]));
        } catch (const serve::ServeError &) {
            ++admission_shed; // queue full: open loop keeps going
        }
    }
    server.flush();
    double wall =
        std::chrono::duration<double>(WClock::now() - start).count();

    std::vector<double> lat;
    lat.reserve(futs.size());
    uint64_t served = 0, deadline_shed = 0;
    for (auto &f : futs) {
        try {
            serve::Reply r = f.get();
            lat.push_back(r.latencyUs);
            ++served;
        } catch (const serve::ServeError &) {
            ++deadline_shed;
        }
    }
    std::sort(lat.begin(), lat.end());

    SweepPoint p;
    p.offeredQps = offered_qps;
    p.achievedQps = wall > 0.0
                        ? static_cast<double>(served) *
                              rows_per_request / wall
                        : 0.0;
    p.p50Us = quantile(lat, 0.50);
    p.p99Us = quantile(lat, 0.99);
    p.p999Us = quantile(lat, 0.999);
    p.shedRate = static_cast<double>(admission_shed + deadline_shed) /
                 static_cast<double>(n_requests);
    return p;
}

harness::Json
jsonRound(double v)
{
    return harness::Json(std::round(v * 10.0) / 10.0);
}

} // namespace

int
main()
{
    bool fast = bench::fastMode();

    bench::banner("Async serving load generator (open-loop Poisson "
                  "sweep to the latency knee)");
    std::cout << "threads=" << ThreadPool::global().threads()
              << (fast ? " (fast mode)" : "") << "\n\n";

    Rng rng(2025);
    ModelConfig mcfg;
    mcfg.baseWidth = fast ? 8 : 16;
    Network net = preActResNetMini(mcfg, rng);
    {
        Rng cal_rng(63);
        Calibrator cal(net);
        cal.calibrate(
            {Tensor::uniform({8, 3, 8, 8}, cal_rng, 0.0f, 1.0f)});
    }
    RpsEngine engine(net);

    const int rows_per_request = 4;
    const int backlog_requests = fast ? 48 : 96;
    SessionConfig sess_cfg;
    sess_cfg.serving.maxBatch = rows_per_request * 4;
    sess_cfg.serving.microBatch = rows_per_request;
    sess_cfg.serving.mode = serve::PlanMode::Quantized;
    sess_cfg.serving.seed = 77;
    sess_cfg.serving.lazyPlanWarmup = false;
    sess_cfg.inputShape = {3, 8, 8};

    Rng req_rng(19);
    std::vector<Tensor> pool;
    for (int i = 0; i < 32; ++i)
        pool.push_back(Tensor::uniform({rows_per_request, 3, 8, 8},
                                       req_rng, 0.0f, 1.0f));

    // --- 1. Serial synchronous baseline ----------------------------
    double serial_qps = 0.0;
    {
        Session sess = Session::attach(net, engine, sess_cfg);
        for (int i = 0; i < backlog_requests; ++i)
            sess.submit(pool[static_cast<size_t>(i) % pool.size()]);
        {
            ThreadPool::ScopedSerial guard;
            sess.drain();
        }
        serial_qps = sess.stats().qps;
    }

    // --- 2. Async saturation throughput ----------------------------
    double async_qps = 0.0;
    {
        serve::ServerConfig scfg;
        scfg.queueCapacity = backlog_requests;
        scfg.maxBatchDelayUs = 200.0;
        scfg.startPaused = true; // pre-fill, then serve the backlog
        serve::Server server(scfg);
        Session sess = Session::attach(net, engine, sess_cfg);
        serve::Server::TenantId tenant = server.addTenant(sess);
        std::vector<std::future<serve::Reply>> futs;
        for (int i = 0; i < backlog_requests; ++i)
            futs.push_back(server.submit(
                tenant, pool[static_cast<size_t>(i) % pool.size()]));
        WClock::time_point t0 = WClock::now();
        server.resume();
        server.flush();
        double wall =
            std::chrono::duration<double>(WClock::now() - t0).count();
        for (auto &f : futs)
            f.get();
        async_qps = wall > 0.0 ? static_cast<double>(
                                     backlog_requests) *
                                     rows_per_request / wall
                               : 0.0;
        server.stop();
    }
    double scaling = serial_qps > 0.0 ? async_qps / serial_qps : 0.0;
    std::printf("%-24s %14s %14s %8s\n", "serving (rows/s)",
                "serial_qps", "async_qps", "scaling");
    std::printf("%-24s %14.0f %14.0f %7.2fx\n", "sync drain vs server",
                serial_qps, async_qps, scaling);

    // --- 3. Open-loop Poisson offered-load sweep -------------------
    // Ladder up to and past saturation; deadlines bound how long a
    // request may queue once the knee is crossed, so the overloaded
    // points degrade by shedding instead of queueing without bound.
    std::vector<double> ladder = {0.25, 0.5, 0.75, 0.9, 1.1, 1.4};
    int sweep_requests = fast ? 40 : 80;
    std::vector<SweepPoint> sweep;
    double knee_qps = 0.0;
    std::printf("\n%-12s %12s %10s %10s %10s %10s\n", "offered_qps",
                "achieved", "p50_us", "p99_us", "p999_us", "shed");
    for (size_t i = 0; i < ladder.size(); ++i) {
        serve::ServerConfig scfg;
        scfg.queueCapacity = sweep_requests;
        scfg.maxBatchDelayUs = 500.0;
        // Deadline: generous at low load, binding past the knee.
        scfg.defaultDeadlineUs = 200000;
        serve::Server server(scfg);
        Session sess = Session::attach(net, engine, sess_cfg);
        serve::Server::TenantId tenant = server.addTenant(sess);
        SweepPoint p = runPoint(server, tenant, pool, sweep_requests,
                                rows_per_request,
                                ladder[i] * async_qps,
                                /*seed=*/9000 + i);
        server.stop();
        sweep.push_back(p);
        if (p.achievedQps >= 0.9 * p.offeredQps)
            knee_qps = std::max(knee_qps, p.offeredQps);
        std::printf("%-12.0f %12.0f %10.0f %10.0f %10.0f %9.1f%%\n",
                    p.offeredQps, p.achievedQps, p.p50Us, p.p99Us,
                    p.p999Us, 100.0 * p.shedRate);
    }
    std::printf("knee: %.0f rows/s\n", knee_qps);

    // --- 4. Serving autotuner: default vs tuned sustained QPS ------
    // Both configurations are measured with the identical
    // backlog-flush method (best of three adjacent runs, noise
    // floor); the tuned run carries the winner through the
    // production path: applyGenome for the session-scoped knobs and
    // Server::addTenant adopting the server-scoped ones from the
    // tenant's TuningArtifact.
    tune::TuneResult tuned;
    {
        Session sess = Session::attach(net, engine, sess_cfg);
        tune::TuneConfig tcfg;
        tcfg.seed = 4242;
        tcfg.population = 12;
        tcfg.cycles = fast ? 4 : 6;
        tcfg.probeRows = 8;
        tuned = tune::autotune(sess, tcfg);
    }
    const ServingGenome &win = tuned.artifact.genome;

    auto sustainedQps = [&](const SessionConfig &sc,
                            const tune::TuningArtifact *artifact) {
        double best = 0.0;
        for (int rep = 0; rep < 3; ++rep) {
            serve::ServerConfig scfg;
            scfg.queueCapacity = backlog_requests;
            scfg.maxBatchDelayUs = 200.0;
            scfg.startPaused = true;
            serve::Server server(scfg);
            Session sess = Session::attach(net, engine, sc);
            if (artifact != nullptr)
                sess.setTuningArtifact(*artifact);
            serve::Server::TenantId tenant = server.addTenant(sess);
            std::vector<std::future<serve::Reply>> futs;
            for (int i = 0; i < backlog_requests; ++i)
                futs.push_back(server.submit(
                    tenant,
                    pool[static_cast<size_t>(i) % pool.size()]));
            WClock::time_point t0 = WClock::now();
            server.resume();
            server.flush();
            double wall = std::chrono::duration<double>(
                              WClock::now() - t0)
                              .count();
            for (auto &f : futs)
                f.get();
            server.stop();
            if (wall > 0.0)
                best = std::max(
                    best, static_cast<double>(backlog_requests) *
                              rows_per_request / wall);
        }
        return best;
    };

    SessionConfig tuned_cfg = sess_cfg;
    tune::applyGenome(win, tuned_cfg.serving);
    double default_qps = sustainedQps(sess_cfg, nullptr);
    double tuned_qps = sustainedQps(tuned_cfg, &tuned.artifact);
    double tuned_speedup =
        default_qps > 0.0 ? tuned_qps / default_qps : 0.0;

    // Iso-QPS tail latency: the same open-loop Poisson point (80% of
    // the default configuration's sustained throughput — near enough
    // to the knee that service-rate headroom shows up in the queue)
    // served under each configuration; best p99 of two runs each.
    double iso_rate = 0.8 * default_qps;
    int iso_requests = fast ? 60 : 120;
    auto isoP99 = [&](const SessionConfig &sc,
                      const tune::TuningArtifact *artifact,
                      uint64_t seed) {
        double best = std::numeric_limits<double>::infinity();
        for (int rep = 0; rep < 2; ++rep) {
            serve::ServerConfig scfg;
            scfg.queueCapacity = iso_requests;
            scfg.maxBatchDelayUs = 500.0;
            scfg.defaultDeadlineUs = 200000;
            serve::Server server(scfg);
            Session sess = Session::attach(net, engine, sc);
            if (artifact != nullptr)
                sess.setTuningArtifact(*artifact);
            serve::Server::TenantId tenant = server.addTenant(sess);
            SweepPoint p =
                runPoint(server, tenant, pool, iso_requests,
                         rows_per_request, iso_rate, seed + rep);
            server.stop();
            best = std::min(best, p.p99Us);
        }
        return best;
    };
    double default_p99 = isoP99(sess_cfg, nullptr, 31000);
    double tuned_p99 = isoP99(tuned_cfg, &tuned.artifact, 32000);
    double p99_improvement =
        default_p99 > 0.0
            ? (default_p99 - tuned_p99) / default_p99 * 100.0
            : 0.0;

    std::printf("\n%-24s %14s %14s %8s\n", "autotuned serving",
                "default_qps", "tuned_qps", "speedup");
    std::printf("%-24s %14.0f %14.0f %7.2fx\n", "backlog flush",
                default_qps, tuned_qps, tuned_speedup);
    std::printf("%-24s %14.0f %14.0f %7.1f%%\n",
                "iso-QPS p99 (us)", default_p99, tuned_p99,
                p99_improvement);
    std::cout << "  selected: " << win.describe()
              << " (predicted cost " << tuned.artifact.predictedCost
              << ", " << tuned.candidates.size() << " candidates, "
              << tuned.evaluated << " evaluations, mean "
                 "predicted-vs-measured error "
              << tuned.meanErrorPct << "%)\n";

    // --- Merge the serve_async section into BENCH_rps.json ---------
    harness::Json doc = harness::Json::object();
    {
        std::ifstream in("BENCH_rps.json");
        if (in) {
            std::stringstream ss;
            ss << in.rdbuf();
            try {
                doc = harness::Json::parse(ss.str());
            } catch (const harness::JsonError &e) {
                std::cerr << "warning: BENCH_rps.json unparseable ("
                          << e.what() << "), starting fresh\n";
                doc = harness::Json::object();
            }
        }
    }
    harness::Json section = harness::Json::object();
    section.set("threads", harness::Json(static_cast<int>(
                               ThreadPool::global().threads())));
    section.set("rows_per_request",
                harness::Json(rows_per_request));
    section.set("serial_qps", jsonRound(serial_qps));
    section.set("async_qps", jsonRound(async_qps));
    section.set("scaling",
                harness::Json(std::round(scaling * 100.0) / 100.0));
    section.set("knee_qps", jsonRound(knee_qps));
    harness::Json points = harness::Json::array();
    for (const SweepPoint &p : sweep) {
        harness::Json row = harness::Json::object();
        row.set("offered_qps", jsonRound(p.offeredQps));
        row.set("achieved_qps", jsonRound(p.achievedQps));
        row.set("p50_us", jsonRound(p.p50Us));
        row.set("p99_us", jsonRound(p.p99Us));
        row.set("p999_us", jsonRound(p.p999Us));
        row.set("shed_rate", harness::Json(
                                 std::round(p.shedRate * 1000.0) /
                                 1000.0));
        points.push(std::move(row));
    }
    section.set("sweep", std::move(points));
    doc.set("serve_async", std::move(section));

    harness::Json tuned_section = harness::Json::object();
    tuned_section.set("threads",
                      harness::Json(static_cast<int>(
                          ThreadPool::global().threads())));
    tuned_section.set("default_qps", jsonRound(default_qps));
    tuned_section.set("tuned_qps", jsonRound(tuned_qps));
    tuned_section.set("speedup_vs_default",
                      harness::Json(
                          std::round(tuned_speedup * 100.0) / 100.0));
    tuned_section.set("iso_qps", jsonRound(iso_rate));
    tuned_section.set("default_p99_us", jsonRound(default_p99));
    tuned_section.set("tuned_p99_us", jsonRound(tuned_p99));
    tuned_section.set("p99_improvement_pct",
                      harness::Json(
                          std::round(p99_improvement * 10.0) / 10.0));
    tuned_section.set("predicted_cost",
                      jsonRound(tuned.artifact.predictedCost));
    tuned_section.set("candidates",
                      harness::Json(static_cast<int>(
                          tuned.candidates.size())));
    tuned_section.set("evaluated",
                      harness::Json(static_cast<int>(tuned.evaluated)));
    tuned_section.set("mean_error_pct",
                      harness::Json(
                          std::round(tuned.meanErrorPct * 10.0) /
                          10.0));
    harness::Json genome = harness::Json::object();
    genome.set("max_batch", harness::Json(win.maxBatch));
    genome.set("micro_batch", harness::Json(win.microBatch));
    genome.set("max_delay_us", jsonRound(win.maxDelayUs));
    genome.set("replicas", harness::Json(win.replicas));
    genome.set("policy", harness::Json(std::string(
                             win.policy == 1 ? "edf" : "round_robin")));
    harness::Json gbits = harness::Json::array();
    for (int b : win.drawBits)
        gbits.push(harness::Json(b));
    genome.set("draw_bits", std::move(gbits));
    harness::Json gweights = harness::Json::array();
    for (int w : win.drawWeights)
        gweights.push(harness::Json(w));
    genome.set("draw_weights", std::move(gweights));
    tuned_section.set("genome", std::move(genome));
    doc.set("serve_tuned", std::move(tuned_section));
    {
        std::ofstream out("BENCH_rps.json");
        out << doc.dump(2) << "\n";
    }
    std::cout
        << "\nmerged serve_async + serve_tuned into BENCH_rps.json\n";

    // --- Gates -----------------------------------------------------
    // Underloaded points must not shed: admission control and
    // deadlines only bite past the knee.
    for (const SweepPoint &p : sweep) {
        if (p.offeredQps < 0.5 * async_qps && p.shedRate > 0.0) {
            std::cerr << "FAIL: shed " << 100.0 * p.shedRate
                      << "% of requests at " << p.offeredQps
                      << " rows/s, well under the " << async_qps
                      << " rows/s saturation point\n";
            return 1;
        }
    }
    // Thread scaling needs real cores behind the pool (same gate
    // shape as microbench_rps): a 1-2 core host cannot express it.
    unsigned hw = std::thread::hardware_concurrency();
    if (ThreadPool::global().threads() >= 4 && hw >= 4 &&
        scaling < 1.5) {
        std::cerr << "FAIL: async serving scaling " << scaling
                  << "x over the serial drain is below the 1.5x "
                     "acceptance floor\n";
        return 1;
    }
    // The autotuned configuration must buy a real end-to-end win over
    // the defaults: >= 1.15x sustained QPS on the same backlog, or
    // >= 15% lower p99 at iso-QPS (the near-knee tail is where
    // service-rate headroom shows; the sustained ceiling of this
    // overhead-dominated mini model sits close to the compute-only
    // bound). Same core caveat as above: a starved pool cannot
    // express batching/replica headroom.
    if (ThreadPool::global().threads() >= 4 && hw >= 4 &&
        tuned_speedup < 1.15 && p99_improvement < 15.0) {
        std::cerr << "FAIL: autotuned serving config sustains only "
                  << tuned_speedup
                  << "x the default configuration's QPS and improves "
                     "iso-QPS p99 by only "
                  << p99_improvement
                  << "% — neither the 1.15x QPS floor nor the 15% "
                     "p99 floor holds\n";
        return 1;
    }
    return 0;
}
