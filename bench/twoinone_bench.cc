/**
 * @file
 * twoinone-bench: the scenario-harness driver.
 *
 * Runs declared JSON scenario specs against the serving stack and
 * manages their committed baselines:
 *
 *   twoinone-bench run <scenario.json> [--out DIR] [--check-determinism]
 *   twoinone-bench validate <scenario.json>
 *   twoinone-bench tune <scenario.json> [--out DIR] [--artifact FILE]
 *   twoinone-bench baseline capture <scenario.json> [--out DIR] [--baseline FILE]
 *   twoinone-bench baseline compare <scenario.json> [--out DIR] [--baseline FILE]
 *
 * `tune` stands the scenario's model up and runs the serving
 * autotuner only (budget from the spec's tuning block, defaults
 * otherwise), printing the per-candidate predicted-vs-measured error
 * report and the selected genome; --artifact writes the winner's
 * serialized TuningArtifact bytes for embedding elsewhere. The
 * selection is seed-deterministic — rerunning prints the same
 * `selected:` line.
 *
 * Exit codes are a stable contract (CI keys off them):
 *   0  run / validate / compare passed
 *   1  internal error (harness bug or unexpected I/O failure)
 *   2  scenario spec invalid (message names the JSON path)
 *   3  baseline compare failed (every violated rule printed)
 *   4  an injected fault was not recovered
 *   5  determinism violation (same-seed rerun diverged)
 *
 * --check-determinism runs the scenario twice (second bundle under
 * <out>/recheck/) and compares the events and precision-trace
 * digests — the byte-identical-rerun contract, checked on one
 * machine so float differences across hosts cannot alias into it.
 *
 * The default baseline path is scenarios/baselines/<name>.json,
 * matching the committed layout.
 */

#include <cstring>
#include <iostream>
#include <string>

#include "harness/baseline.hh"
#include "harness/runner.hh"
#include "harness/scenario.hh"
#include "io/serialize.hh"

namespace {

using namespace twoinone;
using namespace twoinone::harness;

constexpr int kExitOk = 0;
constexpr int kExitInternal = 1;
constexpr int kExitSpecInvalid = 2;
constexpr int kExitCompareFailed = 3;
constexpr int kExitFaultUnrecovered = 4;
constexpr int kExitNondeterministic = 5;

void
usage()
{
    std::cerr
        << "usage:\n"
        << "  twoinone-bench run <scenario.json> [--out DIR]"
           " [--check-determinism]\n"
        << "  twoinone-bench validate <scenario.json>\n"
        << "  twoinone-bench tune <scenario.json> [--out DIR]"
           " [--artifact FILE]\n"
        << "  twoinone-bench baseline capture <scenario.json>"
           " [--out DIR] [--baseline FILE]\n"
        << "  twoinone-bench baseline compare <scenario.json>"
           " [--out DIR] [--baseline FILE]\n";
}

struct Options
{
    std::string command;    ///< run | validate | tune | capture |
                            ///< compare
    std::string scenario;   ///< scenario spec path
    std::string out = "harness-out";
    std::string baseline;   ///< empty = scenarios/baselines/<name>.json
    std::string artifact;   ///< tune: write the TuningArtifact bytes
    bool checkDeterminism = false;
};

bool
parseArgs(int argc, char **argv, Options &opts)
{
    int i = 1;
    if (i >= argc)
        return false;
    opts.command = argv[i++];
    if (opts.command == "baseline") {
        if (i >= argc)
            return false;
        opts.command = argv[i++];
        if (opts.command != "capture" && opts.command != "compare")
            return false;
    } else if (opts.command != "run" && opts.command != "validate" &&
               opts.command != "tune") {
        return false;
    }
    if (i >= argc)
        return false;
    opts.scenario = argv[i++];
    for (; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--out" && i + 1 < argc) {
            opts.out = argv[++i];
        } else if (arg == "--baseline" && i + 1 < argc) {
            opts.baseline = argv[++i];
        } else if (arg == "--artifact" && i + 1 < argc) {
            opts.artifact = argv[++i];
        } else if (arg == "--check-determinism") {
            opts.checkDeterminism = true;
        } else {
            std::cerr << "unknown argument: " << arg << "\n";
            return false;
        }
    }
    return true;
}

std::string
metricString(const Json &metrics, const std::string &outer,
             const std::string &inner)
{
    const Json *o = metrics.find(outer);
    if (o == nullptr || !o->isObject())
        return "";
    const Json *v = o->find(inner);
    return v != nullptr && v->isString() ? v->asString() : "";
}

void
printSummary(const RunResult &res)
{
    const Json *counts = res.metrics.find("counts");
    std::cout << "bundle: " << res.bundleDir << "\n";
    if (counts != nullptr && counts->isObject()) {
        for (const auto &kv : counts->members())
            std::cout << "  counts." << kv.first << " = "
                      << kv.second.dump() << "\n";
    }
    std::cout << "  digests.events = "
              << metricString(res.metrics, "digests", "events") << "\n"
              << "  digests.precision_trace = "
              << metricString(res.metrics, "digests",
                              "precision_trace")
              << "\n";
}

/** Run + fault-recovery gate; returns the exit code and the result. */
int
runScenario(const ScenarioSpec &spec, const std::string &out,
            RunResult &res)
{
    ScenarioRunner runner(spec, out);
    res = runner.run();
    if (!res.faultsRecovered) {
        std::cerr << "FAULT UNRECOVERED: an injected fault was not "
                     "survived (see "
                  << res.bundleDir << "/events.jsonl)\n";
        return kExitFaultUnrecovered;
    }
    return kExitOk;
}

int
cmdRun(const Options &opts, const ScenarioSpec &spec)
{
    RunResult res;
    int rc = runScenario(spec, opts.out, res);
    printSummary(res);
    if (rc != kExitOk)
        return rc;

    if (opts.checkDeterminism) {
        RunResult rerun;
        rc = runScenario(spec, opts.out + "/recheck", rerun);
        if (rc != kExitOk)
            return rc;
        std::string e1 = metricString(res.metrics, "digests", "events");
        std::string e2 =
            metricString(rerun.metrics, "digests", "events");
        std::string t1 =
            metricString(res.metrics, "digests", "precision_trace");
        std::string t2 =
            metricString(rerun.metrics, "digests", "precision_trace");
        if (e1 != e2 || t1 != t2) {
            std::cerr << "DETERMINISM VIOLATION: same-seed rerun "
                         "diverged (events "
                      << e1 << " vs " << e2 << ", trace " << t1
                      << " vs " << t2 << ")\n";
            return kExitNondeterministic;
        }
        std::cout << "determinism check passed: rerun digests match\n";
    }
    std::cout << "scenario '" << spec.name << "' passed\n";
    return kExitOk;
}

int
cmdTune(const Options &opts, const ScenarioSpec &spec)
{
    ScenarioRunner runner(spec, opts.out);
    tune::TuneResult res = runner.tuneOnly();

    std::cout << "tuning: evaluated " << res.evaluated
              << " candidates (" << res.candidates.size()
              << " distinct) over " << res.costHistory.size()
              << " cycles\n";
    std::cout << "  candidate predicted-vs-measured error (per-row ns"
                 " at the dominant precision):\n";
    for (const tune::CandidateReport &c : res.candidates) {
        if (c.measuredRowNs <= 0.0)
            continue;
        std::cout << "    " << c.genome.describe() << "  predicted="
                  << c.predictedRowNs << " measured=" << c.measuredRowNs
                  << " err=" << c.errorPct << "%\n";
    }
    std::cout << "  mean error: " << res.meanErrorPct << "%\n";
    std::cout << "selected: " << res.artifact.genome.describe()
              << " (predicted cost " << res.artifact.predictedCost
              << ", seed " << res.artifact.seed << ")\n";
    std::cout << "bundle: " << runner.bundleDir() << "\n";

    if (!opts.artifact.empty()) {
        std::vector<uint8_t> bytes = res.artifact.bytes();
        writeTextFile(opts.artifact,
                      std::string(bytes.begin(), bytes.end()));
        std::cout << "artifact: " << opts.artifact << " ("
                  << bytes.size() << " bytes)\n";
    }
    return res.found ? kExitOk : kExitInternal;
}

std::string
baselinePath(const Options &opts, const ScenarioSpec &spec)
{
    return opts.baseline.empty()
               ? "scenarios/baselines/" + spec.name + ".json"
               : opts.baseline;
}

int
cmdCapture(const Options &opts, const ScenarioSpec &spec)
{
    RunResult res;
    int rc = runScenario(spec, opts.out, res);
    printSummary(res);
    if (rc != kExitOk)
        return rc;
    std::string path = baselinePath(opts, spec);
    size_t slash = path.rfind('/');
    if (slash != std::string::npos)
        ensureDir(path.substr(0, slash));
    writeTextFile(path, res.metrics.dump(2) + "\n");
    std::cout << "baseline captured: " << path << "\n";
    return kExitOk;
}

int
cmdCompare(const Options &opts, const ScenarioSpec &spec)
{
    std::string path = baselinePath(opts, spec);
    Json baseline;
    try {
        std::vector<uint8_t> bytes = io::readFile(path);
        baseline = Json::parse(std::string(bytes.begin(), bytes.end()));
    } catch (const std::exception &e) {
        std::cerr << "cannot load baseline " << path << ": "
                  << e.what() << "\n";
        return kExitInternal;
    }

    RunResult res;
    int rc = runScenario(spec, opts.out, res);
    printSummary(res);
    if (rc != kExitOk)
        return rc;

    CompareResult cmp =
        compareBaseline(baseline, res.metrics, spec.compare);
    if (!cmp.ok) {
        std::cerr << "BASELINE COMPARE FAILED against " << path
                  << " (" << cmp.failures.size() << " rule"
                  << (cmp.failures.size() == 1 ? "" : "s")
                  << " violated):\n";
        for (const auto &f : cmp.failures)
            std::cerr << "  " << f.message << "\n";
        return kExitCompareFailed;
    }
    std::cout << "baseline compare passed against " << path << "\n";
    return kExitOk;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    if (!parseArgs(argc, argv, opts)) {
        usage();
        return kExitInternal;
    }

    ScenarioSpec spec;
    try {
        spec = loadScenario(opts.scenario);
    } catch (const SpecError &e) {
        std::cerr << "invalid scenario " << opts.scenario << ": "
                  << e.what() << "\n";
        return kExitSpecInvalid;
    } catch (const JsonError &e) {
        std::cerr << "invalid scenario " << opts.scenario << ": "
                  << e.what() << "\n";
        return kExitSpecInvalid;
    } catch (const std::exception &e) {
        std::cerr << "cannot load scenario " << opts.scenario << ": "
                  << e.what() << "\n";
        return kExitInternal;
    }

    if (opts.command == "validate") {
        std::cout << "scenario '" << spec.name << "' is valid ("
                  << spec.phases.size() << " phase"
                  << (spec.phases.size() == 1 ? "" : "s") << ", "
                  << spec.faults.size() << " fault"
                  << (spec.faults.size() == 1 ? "" : "s") << ")\n";
        return kExitOk;
    }

    try {
        if (opts.command == "run")
            return cmdRun(opts, spec);
        if (opts.command == "tune")
            return cmdTune(opts, spec);
        if (opts.command == "capture")
            return cmdCapture(opts, spec);
        return cmdCompare(opts, spec);
    } catch (const std::exception &e) {
        std::cerr << "internal error: " << e.what() << "\n";
        return kExitInternal;
    }
}
