/**
 * @file
 * Dataflow-optimizer ablation (paper Sec. 4.3.1: the optimizer adds
 * e.g. 1.28x throughput on ResNet-50 at 4-bit beyond the MAC unit;
 * Sec. 3.3 / Alg. 2): greedy default vs evolutionary search per
 * accelerator, the Alg. 2 convergence trace, and the joint
 * micro-architecture search mode.
 */

#include "bench_util.hh"
#include "optimizer/arch_search.hh"
#include "workloads/model_library.hh"

using namespace twoinone;

int
main()
{
    bench::banner("Optimizer ablation — Alg. 2 dataflow search");
    const TechModel &tech = TechModel::defaults();
    double budget = Accelerator::defaultAreaBudget();
    NetworkWorkload net = workloads::resNet50();

    EvoConfig cfg;
    cfg.populationSize = bench::fastMode() ? 12 : 24;
    cfg.totalCycles = bench::fastMode() ? 4 : 10;
    cfg.objective = Objective::Latency;
    cfg.seed = 2024;

    TablePrinter table;
    table.header({"accelerator", "precision", "greedy FPS",
                  "optimized FPS", "gain"});
    for (AcceleratorKind kind :
         {AcceleratorKind::TwoInOne, AcceleratorKind::Stripes,
          AcceleratorKind::BitFusion}) {
        Accelerator accel(kind, budget, tech);
        for (int q : {4, 8}) {
            double greedy =
                accel.run(net, q, q).fps(tech.clockGhz, 1);
            std::vector<Dataflow> dfs =
                optimizeNetworkDataflows(accel, net, q, q, cfg);
            double optimized = accel.predictor()
                                   .predictNetwork(net, q, q, dfs)
                                   .fps(tech.clockGhz, 1);
            table.row({accel.name(), std::to_string(q) + "b",
                       formatFixed(greedy, 1), formatFixed(optimized, 1),
                       formatFixed(optimized / greedy, 2) + "x"});
        }
    }
    table.print();
    std::cout << "paper reference: the optimizer adds ~1.28x on "
                 "ResNet-50 @4-bit beyond the MAC-unit gain\n";

    // Alg. 2 convergence trace on one representative layer.
    bench::banner("Alg. 2 convergence (ResNet-50 stage3 conv, 4-bit)");
    Accelerator ours(AcceleratorKind::TwoInOne, budget, tech);
    EvolutionarySearch search(ours.predictor(), cfg);
    SearchConstraints constraints;
    constraints.numUnits = ours.numUnits();
    SearchResult r =
        search.searchLayer(net.layers[20], 4, 4, constraints);
    if (r.found) {
        TablePrinter trace;
        trace.header({"cycle", "best cost (cycles)"});
        for (size_t i = 0; i < r.costHistory.size(); ++i) {
            trace.row({std::to_string(i),
                       formatFixed(r.costHistory[i], 0)});
        }
        trace.print();
        std::cout << "best dataflow found:\n" << r.best.describe();
    }

    // Joint micro-architecture search (second optimizer mode).
    bench::banner("Joint dataflow + micro-architecture search");
    ArchSearchSpace space = ArchSearchSpace::makeDefault(budget * 1.2);
    NetworkWorkload probe;
    probe.name = "ResNet-50 (stage3 probe)";
    probe.layers.push_back(net.layers[20]);
    EvoConfig small_cfg = cfg;
    small_cfg.populationSize = 10;
    small_cfg.totalCycles = 3;
    ArchSearchResult ar = searchMicroArchitecture(
        AcceleratorKind::TwoInOne, space, probe,
        PrecisionSet({4, 8, 16}), small_cfg, tech);
    TablePrinter arch_table;
    arch_table.header(
        {"MAC-array area", "GB size (KB)", "avg cost", "chosen"});
    for (const auto &[cand, cost] : ar.evaluated) {
        bool chosen = ar.found &&
                      cand.macArrayArea == ar.best.macArrayArea &&
                      cand.gbCapacityBits == ar.best.gbCapacityBits;
        arch_table.row({formatFixed(cand.macArrayArea, 0),
                        formatFixed(cand.gbCapacityBits / 8192.0, 0),
                        formatFixed(cost, 0), chosen ? "<== best" : ""});
    }
    arch_table.print();
    return 0;
}
