/**
 * @file
 * Paper Tab. 5: PGD-7 vs PGD-7+RPS under stronger attacks —
 * AutoAttack, CW-Inf, and the gradient-free Bandits attack — at
 * eps = 8 and 12. Expected shape: +RPS wins every cell (paper:
 * +6.88~+9.12% AutoAttack, +9.97~+18.87% CW-Inf, +5.01~+24.48%
 * Bandits), and the Bandits result shows RPS is not obfuscated
 * gradients.
 */

#include "adversarial/autoattack.hh"
#include "adversarial/bandits.hh"
#include "adversarial/cw.hh"
#include "bench_util.hh"

using namespace twoinone;

int
main()
{
    bench::banner("Tab. 5 — stronger attacks, eps = 8 and 12");
    bench::scaleNote();

    PrecisionSet set = PrecisionSet::rps4to16();
    DatasetPair data = makeCifar10Like(bench::fastMode() ? 0.3 : 0.5);
    Dataset eval = data.test.batch(0, bench::scaled(64));

    for (bool wide : {false, true}) {
        const std::string net_name = wide ? "WideResNet-32 (mini)"
                                          : "PreActResNet-18 (mini)";
        bench::banner("Tab. 5 — " + net_name);

        uint64_t seed = wide ? 820 : 810;
        Rng init(seed);
        Network base =
            wide ? bench::makeWideMini(set, 10, init)
                 : bench::makePreActMini(set, 10, init);
        Network rps =
            wide ? bench::makeWideMini(set, 10, init)
                 : bench::makePreActMini(set, 10, init);
        base = bench::trainModel(std::move(base), TrainMethod::Pgd7,
                                 false, data.train, seed + 1);
        rps = bench::trainModel(std::move(rps), TrainMethod::Pgd7, true,
                                data.train, seed + 2);

        TablePrinter table;
        table.header({"Attack", "PGD-7(%)", "PGD-7+RPS(%)", "gain"});
        for (float eps : {8.0f, 12.0f}) {
            AttackConfig cfg = AttackConfig::fromEps255(
                eps, eps / 4.0f, bench::fastMode() ? 10 : 20);
            AutoAttackLite aa(cfg);
            CwInfAttack cw(cfg);
            BanditsAttack bandits(cfg);
            const std::pair<Attack *, std::string> attacks[] = {
                {&aa, "AutoAttack"},
                {&cw, "CW-Inf"},
                {&bandits, "Bandits"},
            };
            for (const auto &[attack, name] : attacks) {
                Rng r1(seed + 11), r2(seed + 11);
                double acc_base =
                    bench::baselineRobust(base, *attack, eval, r1);
                double acc_rps =
                    rpsRobustAccuracy(rps, *attack, eval, set, r2);
                table.row({name + " (eps=" +
                               std::to_string(static_cast<int>(eps)) +
                               ")",
                           formatFixed(acc_base, 2),
                           formatFixed(acc_rps, 2),
                           formatFixed(acc_rps - acc_base, 2)});
            }
        }
        table.print();
    }
    return 0;
}
