/**
 * @file
 * Paper Fig. 9: energy breakdown (DRAM / SRAM / NoC / RF / MAC) of
 * ours vs Bit Fusion on the six networks executed at 4-bit x 4-bit.
 * Expected shape: DRAM dominates both designs, but every component —
 * MAC compute and data movement alike — shrinks on ours.
 */

#include "bench_util.hh"
#include "optimizer/evolutionary.hh"
#include "workloads/model_library.hh"

using namespace twoinone;

namespace {

NetworkPrediction
optimizedRun(const Accelerator &accel, const NetworkWorkload &net, int q)
{
    EvoConfig cfg;
    cfg.populationSize = bench::fastMode() ? 10 : 20;
    cfg.totalCycles = bench::fastMode() ? 3 : 6;
    cfg.objective = Objective::Energy;
    cfg.seed = 999;
    std::vector<Dataflow> dfs =
        optimizeNetworkDataflows(accel, net, q, q, cfg);
    return accel.predictor().predictNetwork(net, q, q, dfs);
}

} // namespace

int
main()
{
    bench::banner("Fig. 9 — energy breakdown at 4-bit x 4-bit (mJ)");
    const TechModel &tech = TechModel::defaults();
    double budget = Accelerator::defaultAreaBudget();
    Accelerator ours(AcceleratorKind::TwoInOne, budget, tech);
    Accelerator bf(AcceleratorKind::BitFusion, budget, tech);

    TablePrinter table;
    table.header({"network", "design", "DRAM", "SRAM", "NoC", "RF",
                  "MAC", "total"});
    for (const NetworkWorkload &net : workloads::benchmarkSuite()) {
        for (const Accelerator *accel : {&bf, &ours}) {
            NetworkPrediction np = optimizedRun(*accel, net, 4);
            auto mj = [](double pj) { return formatFixed(pj * 1e-9, 3); };
            table.row(
                {net.name, accel->name(),
                 mj(np.memEnergyPj[static_cast<size_t>(Level::Dram)]),
                 mj(np.memEnergyPj[static_cast<size_t>(Level::Gb)]),
                 mj(np.memEnergyPj[static_cast<size_t>(Level::Noc)]),
                 mj(np.memEnergyPj[static_cast<size_t>(Level::Rf)]),
                 mj(np.macEnergyPj), mj(np.totalEnergyPj)});
        }
    }
    table.print();
    std::cout << "expected shape: DRAM dominates both; ours reduces "
                 "every component vs BitFusion\n";
    return 0;
}
