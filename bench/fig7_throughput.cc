/**
 * @file
 * Paper Fig. 7: normalized throughput of Bit Fusion / Stripes / ours
 * on six networks at {2,4,8,16}-bit, everything normalized to
 * Bit Fusion. Dataflows are optimized per the paper's protocol: full
 * search for ours and Stripes, GB-loop-order-only for Bit Fusion.
 * Expected shape: ours 1.4x~2.9x over Bit Fusion and 1.15x~4.6x over
 * Stripes at every precision.
 */

#include "bench_util.hh"
#include "optimizer/evolutionary.hh"
#include "workloads/model_library.hh"

using namespace twoinone;

namespace {

double
optimizedFps(const Accelerator &accel, const NetworkWorkload &net, int q)
{
    EvoConfig cfg;
    cfg.populationSize = bench::fastMode() ? 10 : 20;
    cfg.totalCycles = bench::fastMode() ? 3 : 6;
    cfg.objective = Objective::Latency;
    cfg.seed = 1234;
    std::vector<Dataflow> dfs =
        optimizeNetworkDataflows(accel, net, q, q, cfg);
    NetworkPrediction np =
        accel.predictor().predictNetwork(net, q, q, dfs);
    return np.fps(TechModel::defaults().clockGhz, 1);
}

} // namespace

int
main()
{
    bench::banner(
        "Fig. 7 — normalized throughput (BitFusion = 1.0)");
    const TechModel &tech = TechModel::defaults();
    double budget = Accelerator::defaultAreaBudget();
    Accelerator ours(AcceleratorKind::TwoInOne, budget, tech);
    Accelerator stripes(AcceleratorKind::Stripes, budget, tech);
    Accelerator bf(AcceleratorKind::BitFusion, budget, tech);

    auto suite = workloads::benchmarkSuite();
    double worst_ours_vs_bf = 1e30, best_ours_vs_bf = 0.0;
    for (int q : {2, 4, 8, 16}) {
        bench::banner("Fig. 7 — " + std::to_string(q) + "-bit x " +
                      std::to_string(q) + "-bit");
        TablePrinter table;
        table.header({"network", "BitFusion", "Stripes", "Ours"});
        for (const NetworkWorkload &net : suite) {
            double f_bf = optimizedFps(bf, net, q);
            double f_st = optimizedFps(stripes, net, q);
            double f_ours = optimizedFps(ours, net, q);
            table.row({net.name, "1.00", formatFixed(f_st / f_bf, 2),
                       formatFixed(f_ours / f_bf, 2)});
            worst_ours_vs_bf =
                std::min(worst_ours_vs_bf, f_ours / f_bf);
            best_ours_vs_bf = std::max(best_ours_vs_bf, f_ours / f_bf);
        }
        table.print();
    }
    std::cout << "ours vs BitFusion across the grid: "
              << formatFixed(worst_ours_vs_bf, 2) << "x ~ "
              << formatFixed(best_ours_vs_bf, 2)
              << "x (paper: 1.41x ~ 2.88x)\n";
    return 0;
}
