/**
 * @file
 * Paper Tab. 4: RPS on ImageNet (stand-in) with FGSM-RS and Free
 * adversarial training on ResNet-50 (mini), PGD-10 / PGD-50 attacks
 * at eps = 4. Expected shape: +RPS wins natural AND robust accuracy
 * (paper: +7.65% / +10.11% PGD-10 over FGSM-RS / Free).
 */

#include "adversarial/pgd.hh"
#include "bench_util.hh"

using namespace twoinone;

int
main()
{
    bench::banner("Tab. 4 — RPS on ImageNet (stand-in), eps=4");
    bench::scaleNote();

    PrecisionSet set = PrecisionSet::rps4to16();
    DatasetPair data = makeImageNetLike(bench::fastMode() ? 0.3 : 0.5);
    Dataset eval = data.test.batch(0, bench::scaled(96));
    const int classes = data.train.numClasses;

    PgdAttack pgd10(AttackConfig::fromEps255(4.0f, 1.0f, 10));
    PgdAttack pgd50(AttackConfig::fromEps255(4.0f, 1.0f, 50));

    TablePrinter table;
    table.header({"Training", "Natural(%)", "PGD-10(%)", "PGD-50(%)"});

    const std::pair<TrainMethod, std::string> methods[] = {
        {TrainMethod::FgsmRs, "FGSM-RS"},
        {TrainMethod::Free, "Free"},
    };
    uint64_t seed = 710;
    for (const auto &[method, name] : methods) {
        for (bool rps : {false, true}) {
            Rng init(seed);
            Rng eval_rng(seed + 3);
            ModelConfig mcfg;
            mcfg.baseWidth = 4;
            mcfg.numClasses = classes;
            mcfg.precisions = set;
            Network model = resNetMini(mcfg, init);
            TrainConfig tcfg =
                bench::benchTrainConfig(method, rps, seed + 5);
            tcfg.eps = 4.0f / 255.0f;
            tcfg.alpha = 1.0f / 255.0f;
            Trainer trainer(model, tcfg);
            trainer.fit(data.train);
            model.setPrecision(0);

            double nat, p10, p50;
            if (rps) {
                nat = rpsNaturalAccuracy(model, eval, set, eval_rng);
                p10 = rpsRobustAccuracy(model, pgd10, eval, set,
                                        eval_rng);
                p50 = rpsRobustAccuracy(model, pgd50, eval, set,
                                        eval_rng);
            } else {
                nat = naturalAccuracy(model, eval);
                p10 = bench::baselineRobust(model, pgd10, eval,
                                            eval_rng);
                p50 = bench::baselineRobust(model, pgd50, eval,
                                            eval_rng);
            }
            table.row({name + (rps ? "+RPS" : ""), formatFixed(nat, 2),
                       formatFixed(p10, 2), formatFixed(p50, 2)});
            ++seed;
        }
    }
    table.print();
    std::cout << "paper reference: RPS +7.65%/+10.11% PGD-10 robust "
                 "accuracy over FGSM-RS/Free, with higher natural "
                 "accuracy\n";
    return 0;
}
