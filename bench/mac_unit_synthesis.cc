/**
 * @file
 * Paper Sec. 3.2.3 synthesized MAC-unit comparison: throughput/area
 * and energy-efficiency/operation of the proposed MAC unit vs
 * Bit Fusion (reference: 2.3x and 4.88x at 8-bit x 8-bit), plus the
 * full per-precision profile of all three designs.
 */

#include "accel/spatial_mac.hh"
#include "accel/spatial_temporal_mac.hh"
#include "accel/temporal_mac.hh"
#include "bench_util.hh"

using namespace twoinone;

int
main()
{
    bench::banner("Sec. 3.2.3 — MAC-unit synthesis comparison");
    const TechModel &tech = TechModel::defaults();
    TemporalMacModel temporal;
    SpatialMacModel spatial;
    SpatialTemporalMacModel ours;
    const MacUnitModel *models[] = {&temporal, &spatial, &ours};

    TablePrinter table;
    table.header({"precision", "design", "MACs/cycle", "MACs/cycle/area",
                  "energy/MAC(pJ)"});
    for (int q : {2, 4, 6, 8, 12, 16}) {
        for (const MacUnitModel *m : models) {
            table.row({std::to_string(q) + "b", m->name(),
                       formatFixed(m->macsPerCycle(q, q), 2),
                       formatFixed(m->macsPerCyclePerArea(q, q), 3),
                       formatFixed(m->energyPerMac(q, q, tech), 4)});
        }
    }
    table.print();

    double ta = ours.macsPerCyclePerArea(8, 8) /
                spatial.macsPerCyclePerArea(8, 8);
    double eop = spatial.energyPerMac(8, 8, tech) /
                 ours.energyPerMac(8, 8, tech);
    std::cout << "\nours vs BitFusion at 8-bit x 8-bit: "
              << formatFixed(ta, 2)
              << "x throughput/area (paper: 2.3x), "
              << formatFixed(eop, 2)
              << "x energy-efficiency/op (paper: 4.88x)\n";
    return 0;
}
