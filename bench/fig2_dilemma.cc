/**
 * @file
 * Paper Fig. 2: throughput of Bit Fusion vs Stripes across execution
 * precisions 1-16 on ResNet-50 / ImageNet, showing the
 * flexibility-vs-performance dilemma: Bit Fusion wins at its
 * supported low precisions but staircases at unsupported ones and
 * collapses above 8-bit; Stripes scales smoothly with precision.
 */

#include "accel/accelerator.hh"
#include "bench_util.hh"
#include "workloads/model_library.hh"

using namespace twoinone;

int
main()
{
    bench::banner("Fig. 2 — Bit Fusion vs Stripes, ResNet-50 (FPS)");
    const TechModel &tech = TechModel::defaults();
    double budget = Accelerator::defaultAreaBudget();
    Accelerator bf(AcceleratorKind::BitFusion, budget, tech);
    Accelerator stripes(AcceleratorKind::Stripes, budget, tech);
    NetworkWorkload net = workloads::resNet50();

    TablePrinter table;
    table.header({"precision", "BitFusion FPS", "Stripes FPS",
                  "BF/Stripes"});
    for (int q = 1; q <= 16; ++q) {
        double f_bf = bf.run(net, q, q).fps(tech.clockGhz, 1);
        double f_st = stripes.run(net, q, q).fps(tech.clockGhz, 1);
        table.row({std::to_string(q) + "b", formatFixed(f_bf, 1),
                   formatFixed(f_st, 1), formatFixed(f_bf / f_st, 2)});
    }
    table.print();
    std::cout << "expected shape: BF > Stripes below 8-bit with a "
                 "staircase at {3,5,6,7}-bit; Stripes > BF above "
                 "8-bit; Stripes improves smoothly as precision "
                 "drops\n";
    return 0;
}
