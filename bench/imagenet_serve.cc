/**
 * @file
 * End-to-end serving bench on the ImageNet-class model_library shape:
 * streaming warm start + byte-budgeted engine cache vs the eager
 * full-hydration path (the ISSUE 10 tentpole benchmark).
 *
 * The parent process builds the servable ResNet-50 stand-in
 * (workloads::servableResNet50 — stages 3-4-6-3 at a scaled width),
 * calibrates it, populates the full engine cache across the rps4to16
 * candidates, and saves the artifact with cells + packs. It then
 * re-executes itself twice, because ru_maxrss is a process-lifetime
 * high-water mark — the two load paths must peak in separate
 * processes to be comparable:
 *
 *   --phase full    eager Session::fromCheckpoint: whole artifact
 *                   read + every cell hydrated up front.
 *   --phase stream  streamArtifact=true with cacheBudgetBytes at
 *                   ~40% of the measured full cache size: directory +
 *                   state eager, cells faulted in per (layer,
 *                   precision) under LRU eviction.
 *
 * Each child runs the identical serve workload — a full precision
 * sweep of quantized forwards plus a batched serve() — and reports
 * peak RSS, a logits digest, and the engine counters. The parent
 * gates:
 *   - digest equality (eviction/rehydration must stay bit-identical),
 *   - stream cacheBytes() <= budget (the invariant, child-asserted
 *     too),
 *   - stream peak RSS < 0.75x the full-hydration peak.
 *
 * Results merge into BENCH_rps.json as the "imagenet_serve" section,
 * tracked by ci/check_bench_regression.py via
 * imagenet_serve.rss_saving and imagenet_serve.hydrations.
 */

#include <sys/resource.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "harness/json.hh"
#include "io/checkpoint.hh"
#include "io/serialize.hh"
#include "quant/calibration.hh"
#include "quant/rps_engine.hh"
#include "serve/session.hh"
#include "workloads/model_library.hh"

namespace {

using namespace twoinone;

/** Peak RSS of this process so far, in KiB (Linux ru_maxrss unit). */
long
peakRssKb()
{
    struct rusage ru;
    getrusage(RUSAGE_SELF, &ru);
    return ru.ru_maxrss;
}

/** Running FNV-1a fold over a tensor's float bytes. */
uint64_t
foldTensor(uint64_t h, const Tensor &t)
{
    // Re-seed the fold with the previous digest so section order
    // matters, then hash the raw float bytes.
    const uint8_t *bytes =
        reinterpret_cast<const uint8_t *>(t.data());
    uint64_t chunk = io::fnv1a(bytes, t.size() * sizeof(float));
    h ^= chunk;
    h *= 1099511628211ULL;
    return h;
}

/** The identical serve workload both children run: one quantized
 * forward per rps4to16 candidate plus a batched serve(), digesting
 * every logit tensor. */
uint64_t
runWorkload(Session &sess)
{
    Rng rng(515);
    Tensor x = Tensor::uniform({4, 3, 32, 32}, rng, 0.0f, 1.0f);
    uint64_t digest = 1469598103934665603ULL;
    for (int bits : sess.candidates().bits()) {
        sess.switchPrecision(bits);
        digest = foldTensor(digest, sess.forwardQuantized(x));
    }
    // Second sweep in reverse: under a 40% budget the early cells
    // have been evicted by now, so this is the rehydration path.
    const std::vector<int> &bits = sess.candidates().bits();
    for (size_t i = bits.size(); i-- > 0;) {
        sess.switchPrecision(bits[i]);
        digest = foldTensor(digest, sess.forwardQuantized(x));
    }
    std::vector<Tensor> reqs;
    for (int i = 0; i < 4; ++i)
        reqs.push_back(
            Tensor::uniform({2, 3, 32, 32}, rng, 0.0f, 1.0f));
    for (const Tensor &y : sess.serve(reqs))
        digest = foldTensor(digest, y);
    return digest;
}

/** Hex form of a digest (JSON-safe). */
std::string
hex(uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/** Child body: load the artifact on one path, run the workload,
 * write {peak_rss_kb, digest, cache_bytes, ...} to @p out_path. */
int
runPhase(const std::string &phase, const std::string &artifact,
         const std::string &out_path, size_t budget)
{
    SessionConfig cfg;
    cfg.inputShape = {3, 32, 32};
    cfg.serving.seed = 99;
    if (phase == "stream") {
        cfg.streamArtifact = true;
        cfg.cacheBudgetBytes = budget;
    }
    Session sess = Session::fromCheckpoint(artifact, cfg);
    long load_kb = peakRssKb();
    uint64_t digest = runWorkload(sess);
    long peak_kb = peakRssKb();
    size_t cache_bytes = sess.engine().cacheBytes();
    if (phase == "stream" && budget > 0 && cache_bytes > budget) {
        std::cerr << "FAIL: cacheBytes() " << cache_bytes
                  << " exceeds the " << budget << " byte budget\n";
        return 1;
    }
    harness::Json doc = harness::Json::object();
    doc.set("peak_rss_kb", harness::Json(static_cast<int>(peak_kb)));
    doc.set("load_rss_kb", harness::Json(static_cast<int>(load_kb)));
    doc.set("digest", harness::Json(hex(digest)));
    doc.set("cache_bytes",
            harness::Json(static_cast<int>(cache_bytes)));
    doc.set("hydrations", harness::Json(static_cast<int>(
                              sess.engine().cellHydrations())));
    doc.set("evictions", harness::Json(static_cast<int>(
                             sess.engine().cacheEvictions())));
    doc.set("rebuilds", harness::Json(static_cast<int>(
                            sess.engine().columnRebuilds())));
    std::ofstream out(out_path);
    out << doc.dump(2) << "\n";
    return out ? 0 : 1;
}

double
num(const harness::Json &j, const char *key)
{
    const harness::Json *v = j.find(key);
    return v != nullptr ? v->asNumber() : 0.0;
}

std::string
str(const harness::Json &j, const char *key)
{
    const harness::Json *v = j.find(key);
    return v != nullptr ? v->asString() : std::string();
}

harness::Json
loadJson(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << "FAIL: child result " << path << " missing\n";
        std::exit(1);
    }
    std::stringstream ss;
    ss << in.rdbuf();
    return harness::Json::parse(ss.str());
}

} // namespace

int
main(int argc, char **argv)
{
    std::string phase, artifact, out_path;
    size_t budget = 0;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--phase" && i + 1 < argc)
            phase = argv[++i];
        else if (a == "--artifact" && i + 1 < argc)
            artifact = argv[++i];
        else if (a == "--out" && i + 1 < argc)
            out_path = argv[++i];
        else if (a == "--budget" && i + 1 < argc)
            budget = static_cast<size_t>(
                std::strtoull(argv[++i], nullptr, 10));
    }
    if (!phase.empty())
        return runPhase(phase, artifact, out_path, budget);

    bool fast = bench::fastMode();
    bench::banner(
        "ImageNet-class serving: streaming warm start + cache budget");
    std::cout << (fast ? "(fast mode)\n" : "");

    // --- Build, calibrate, fill the cache, save --------------------
    Rng rng(808);
    int width = fast ? 12 : 16;
    Network net = workloads::servableResNet50(rng, width);
    size_t params = 0;
    for (const Parameter *p : net.parameters())
        params += p->value.size();
    {
        Rng cal_rng(63);
        Calibrator cal(net);
        cal.calibrate(
            {Tensor::uniform({8, 3, 32, 32}, cal_rng, 0.0f, 1.0f)});
    }
    RpsEngine engine(net);
    for (int bits : net.precisionSet().bits())
        engine.setPrecision(bits);
    size_t full_cache = engine.cacheBytes();
    size_t budget_bytes =
        static_cast<size_t>(static_cast<double>(full_cache) * 0.4);

    const std::string ckpt = "imagenet_serve_artifact.ckpt";
    checkpoint::SaveOptions opts;
    opts.includeEngineCache = true;
    opts.includeEnginePacks = true;
    checkpoint::save(ckpt, net, &engine, opts);
    size_t artifact_bytes = 0;
    {
        std::ifstream in(ckpt, std::ios::binary | std::ios::ate);
        artifact_bytes = static_cast<size_t>(in.tellg());
    }
    std::printf("%-24s %10zu params, artifact %.1f MB, full cache "
                "%.1f MB, budget %.1f MB\n",
                "servable_resnet50", params,
                artifact_bytes / 1048576.0, full_cache / 1048576.0,
                budget_bytes / 1048576.0);

    // --- Re-exec: one process per load path ------------------------
    auto child = [&](const std::string &ph, size_t b,
                     const std::string &out) {
        std::string cmd = std::string(argv[0]) + " --phase " + ph +
                          " --artifact " + ckpt + " --out " + out +
                          " --budget " + std::to_string(b);
        int rc = std::system(cmd.c_str());
        if (rc != 0) {
            std::cerr << "FAIL: child '" << cmd << "' exited "
                      << rc << "\n";
            std::exit(1);
        }
    };
    child("full", 0, "imagenet_serve_full.json");
    child("stream", budget_bytes, "imagenet_serve_stream.json");

    harness::Json full = loadJson("imagenet_serve_full.json");
    harness::Json stream = loadJson("imagenet_serve_stream.json");
    double full_peak_kb = num(full, "peak_rss_kb");
    double stream_peak_kb = num(stream, "peak_rss_kb");
    double full_load_kb = num(full, "load_rss_kb");
    double stream_load_kb = num(stream, "load_rss_kb");
    double rss_saving =
        stream_peak_kb > 0.0 ? full_peak_kb / stream_peak_kb : 0.0;
    double load_saving =
        stream_load_kb > 0.0 ? full_load_kb / stream_load_kb : 0.0;
    bool identical = str(full, "digest") == str(stream, "digest");

    std::printf("\n%-24s %12s %12s %12s %10s %10s\n", "load path",
                "load_rss_mb", "peak_rss_mb", "cache_mb", "hydrations",
                "evictions");
    std::printf("%-24s %12.1f %12.1f %12.1f %10.0f %10.0f\n",
                "full (eager)", full_load_kb / 1024.0,
                full_peak_kb / 1024.0,
                num(full, "cache_bytes") / 1048576.0,
                num(full, "hydrations"),
                num(full, "evictions"));
    std::printf("%-24s %12.1f %12.1f %12.1f %10.0f %10.0f\n",
                "stream (40% budget)", stream_load_kb / 1024.0,
                stream_peak_kb / 1024.0,
                num(stream, "cache_bytes") / 1048576.0,
                num(stream, "hydrations"),
                num(stream, "evictions"));
    std::printf("%-24s %11.2fx   peak %.2fx   logits %s\n",
                "warm-start rss saving", load_saving, rss_saving,
                identical ? "bit-identical" : "DIVERGED");

    // --- Merge the imagenet_serve section into BENCH_rps.json ------
    harness::Json doc = harness::Json::object();
    {
        std::ifstream in("BENCH_rps.json");
        if (in) {
            std::stringstream ss;
            ss << in.rdbuf();
            try {
                doc = harness::Json::parse(ss.str());
            } catch (const harness::JsonError &e) {
                std::cerr << "warning: BENCH_rps.json unparseable ("
                          << e.what() << "), starting fresh\n";
                doc = harness::Json::object();
            }
        }
    }
    harness::Json section = harness::Json::object();
    section.set("model", harness::Json(std::string(
                             "servable_resnet50")));
    section.set("params", harness::Json(static_cast<int>(params)));
    section.set("artifact_bytes",
                harness::Json(static_cast<int>(artifact_bytes)));
    section.set("full_cache_bytes",
                harness::Json(static_cast<int>(full_cache)));
    section.set("budget_bytes",
                harness::Json(static_cast<int>(budget_bytes)));
    section.set("full_peak_rss_mb",
                harness::Json(std::round(full_peak_kb / 1024.0 * 10.0) /
                              10.0));
    section.set("stream_peak_rss_mb",
                harness::Json(
                    std::round(stream_peak_kb / 1024.0 * 10.0) /
                    10.0));
    section.set("full_load_rss_mb",
                harness::Json(std::round(full_load_kb / 1024.0 * 10.0) /
                              10.0));
    section.set("stream_load_rss_mb",
                harness::Json(
                    std::round(stream_load_kb / 1024.0 * 10.0) /
                    10.0));
    section.set("rss_saving",
                harness::Json(std::round(rss_saving * 100.0) / 100.0));
    section.set("load_rss_saving",
                harness::Json(std::round(load_saving * 100.0) / 100.0));
    section.set("hydrations",
                harness::Json(num(stream, "hydrations")));
    section.set("evictions",
                harness::Json(num(stream, "evictions")));
    section.set("bit_identical", harness::Json(identical));
    doc.set("imagenet_serve", std::move(section));
    {
        std::ofstream out("BENCH_rps.json");
        out << doc.dump(2) << "\n";
    }
    std::cout << "\nmerged imagenet_serve into BENCH_rps.json\n";

    // --- Gates -----------------------------------------------------
    if (!identical) {
        std::cerr << "FAIL: streaming/budgeted serving diverged from "
                     "the eager path (digest mismatch)\n";
        return 1;
    }
    if (num(stream, "cache_bytes") >
        static_cast<double>(budget_bytes)) {
        std::cerr << "FAIL: stream child finished above its cache "
                     "budget\n";
        return 1;
    }
    if (num(stream, "hydrations") <= 0.0) {
        std::cerr << "FAIL: streaming warm start hydrated no cells — "
                     "the lazy path did not engage\n";
        return 1;
    }
    // The warm start itself is where streaming wins: eager load
    // materializes the whole artifact + cache, streaming touches the
    // directory plus the state blobs only.
    if (stream_load_kb >= 0.6 * full_load_kb) {
        std::cerr << "FAIL: streaming warm start loaded at "
                  << stream_load_kb / 1024.0 << " MB RSS, not well "
                  << "below the eager " << full_load_kb / 1024.0
                  << " MB (floor: 40% saving at load time)\n";
        return 1;
    }
    // End-to-end peak: both children run the identical sweep (whose
    // scratch dominates and cancels), so streaming must still clear a
    // third of the cache slack the budget holds back.
    double slack_kb =
        static_cast<double>(full_cache - budget_bytes) / 1024.0;
    if (stream_peak_kb >= full_peak_kb - slack_kb / 3.0) {
        std::cerr << "FAIL: streaming+budget peaked at "
                  << stream_peak_kb / 1024.0 << " MB, not measurably "
                  << "below the full-hydration "
                  << full_peak_kb / 1024.0 << " MB (floor: "
                  << slack_kb / 3.0 / 1024.0 << " MB of the held-back "
                  << "cache slack)\n";
        return 1;
    }
    return 0;
}
