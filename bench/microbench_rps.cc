/**
 * @file
 * RPS inference-engine microbenchmark (ISSUE 2).
 *
 * Measures the cost of a precision switch with and without the
 * RpsEngine per-precision weight cache, the cached vs uncached
 * forward pass, and the accelerator per-layer sweep wall-clock with
 * and without the thread pool — and verifies that the cached forward
 * is bit-identical to the from-scratch fake-quant path at every
 * candidate in rps4to16(). Writes BENCH_rps.json so the trajectory is
 * tracked per PR.
 *
 * JSON schema (times are mean wall ns per operation):
 *   meta:    { threads, fast, model, precision_set, cache_bytes }
 *   switch:  { uncached_ns, cached_ns, speedup }   (one full
 *            precision switch, averaged over the candidate set)
 *   forward: [ { bits, uncached_ns, cached_ns, speedup } ]
 *   quant_forward: [ { bits, float_cached_ns, quant_ns, speedup } ]
 *            (calibrated static-scale integer forward vs the cached
 *            dynamic float fake-quant forward — ISSUE 3)
 *   quant_forward_speedup: mean of the per-bits speedups
 *   int_gemm: { m, n, k, bits, ns, gops, sgemm_ns, sgemm_gflops }
 *            (the int16 code kernel vs the blocked float kernel)
 *   sweep:   { serial_ns, parallel_ns, speedup }   (accelerator
 *            layers x precisions sweep, resnet18-cifar x rps4to16)
 *   bit_identical: true/false
 *
 * Exits non-zero when the cached forward is not bit-identical, the
 * cached switch speedup falls below the 10x acceptance floor, or the
 * calibrated quantized forward is not >= 1.3x the cached float
 * forward (the ISSUE 3 acceptance gate).
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "accel/accelerator.hh"
#include "bench_util.hh"
#include "common/thread_pool.hh"
#include "quant/calibration.hh"
#include "quant/rps_engine.hh"
#include "tensor/gemm.hh"
#include "workloads/model_library.hh"

namespace {

using namespace twoinone;
using Clock = std::chrono::steady_clock;

/** Mean wall ns/op of fn, run repeatedly for a minimum budget. */
double
timeNs(const std::function<void()> &fn, double min_seconds)
{
    fn(); // warm-up
    int64_t reps = 0;
    auto start = Clock::now();
    double elapsed = 0.0;
    do {
        fn();
        ++reps;
        elapsed = std::chrono::duration<double>(Clock::now() - start)
                      .count();
    } while (elapsed < min_seconds || reps < 3);
    return elapsed * 1e9 / static_cast<double>(reps);
}

struct ForwardRow
{
    int bits;
    double uncached_ns = 0.0;
    double cached_ns = 0.0;
};

std::string
jsonNum(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f", v);
    return buf;
}

} // namespace

int
main()
{
    bool fast = bench::fastMode();
    double min_seconds = fast ? 0.05 : 0.25;

    bench::banner("RPS engine microbenchmarks (cached vs uncached "
                  "precision switching)");
    std::cout << "threads=" << ThreadPool::global().threads()
              << (fast ? " (fast mode)" : "") << "\n\n";

    Rng rng(2024);
    ModelConfig mcfg;
    mcfg.baseWidth = fast ? 8 : 16;
    Network net = preActResNetMini(mcfg, rng);
    PrecisionSet set = net.precisionSet();
    Rng data_rng(7);
    Tensor x = Tensor::uniform({fast ? 4 : 8, 3, 8, 8}, data_rng, 0.0f,
                               1.0f);

    RpsEngine engine(net);
    std::vector<WeightQuantizedLayer *> wlayers =
        net.weightQuantizedLayers();
    size_t weight_scalars = 0;
    for (WeightQuantizedLayer *l : wlayers)
        weight_scalars += l->masterWeight().size();
    std::cout << "model=preact_mini  quant_layers=" << wlayers.size()
              << "  weight_scalars=" << weight_scalars
              << "  cache=" << engine.cacheBytes() << " bytes\n";

    // --- Precision switch: uncached re-quantization vs cache install.
    // An uncached switch pays one fakeQuantSymmetric pass per weight
    // tensor (what the next forward would run); a cached switch
    // installs the pre-quantized entries. Cycle the candidate set so
    // both paths average over the same precisions.
    size_t cursor = 0;
    double uncached_switch_ns = timeNs(
        [&] {
            int bits = set.bits()[cursor++ % set.size()];
            for (WeightQuantizedLayer *l : wlayers) {
                QuantResult r = LinearQuantizer::fakeQuantSymmetric(
                    l->masterWeight(), bits);
                (void)r;
            }
        },
        min_seconds);
    cursor = 0;
    double cached_switch_ns = timeNs(
        [&] { engine.setPrecision(set.bits()[cursor++ % set.size()]); },
        min_seconds);
    double switch_speedup = uncached_switch_ns / cached_switch_ns;
    std::printf("\n%-24s %14s %14s %8s\n", "precision switch",
                "uncached_ns", "cached_ns", "speedup");
    std::printf("%-24s %14.0f %14.0f %7.1fx\n", "avg over set",
                uncached_switch_ns, cached_switch_ns, switch_speedup);

    // --- Forward pass + bit-identity per candidate -----------------
    bool bit_identical = true;
    std::vector<ForwardRow> fwd_rows;
    for (int bits : set.bits()) {
        ForwardRow row;
        row.bits = bits;

        engine.detach();
        net.setPrecision(bits);
        Tensor y_ref = net.forward(x, false);
        row.uncached_ns =
            timeNs([&] { net.forward(x, false); }, min_seconds);

        Tensor y_cached = engine.forwardAt(bits, x);
        row.cached_ns =
            timeNs([&] { net.forward(x, false); }, min_seconds);

        if (!y_ref.sameShape(y_cached)) {
            bit_identical = false;
        } else {
            for (size_t i = 0; i < y_ref.size(); ++i) {
                if (y_ref[i] != y_cached[i]) {
                    bit_identical = false;
                    break;
                }
            }
        }
        fwd_rows.push_back(row);
    }
    std::printf("\n%-8s %14s %14s %8s\n", "forward", "uncached_ns",
                "cached_ns", "speedup");
    for (const ForwardRow &r : fwd_rows)
        std::printf("%-8d %14.0f %14.0f %7.2fx\n", r.bits, r.uncached_ns,
                    r.cached_ns, r.uncached_ns / r.cached_ns);
    std::cout << "cached forward bit-identical: "
              << (bit_identical ? "yes" : "NO") << "\n";

    // --- Quantized forward: calibrated static scales + int codes ---
    // The float rows above are the PR 2 cached path (dynamic
    // activation fake-quant); the quantized forward runs the same
    // cached codes through the integer GEMM kernels with calibrated
    // static activation scales — no range reduction, no fake-quant.
    Calibrator cal(net);
    cal.calibrate({x});
    struct QuantRow
    {
        int bits;
        double float_cached_ns = 0.0;
        double quant_ns = 0.0;
    };
    std::vector<QuantRow> quant_rows;
    double speedup_sum = 0.0;
    for (size_t i = 0; i < fwd_rows.size(); ++i) {
        QuantRow row;
        row.bits = fwd_rows[i].bits;
        row.float_cached_ns = fwd_rows[i].cached_ns;
        engine.setPrecision(row.bits);
        row.quant_ns =
            timeNs([&] { net.forwardQuantized(x); }, min_seconds);
        speedup_sum += row.float_cached_ns / row.quant_ns;
        quant_rows.push_back(row);
    }
    double quant_speedup =
        speedup_sum / static_cast<double>(quant_rows.size());
    std::printf("\n%-8s %14s %14s %8s\n", "quantfwd", "float_cached",
                "quant_ns", "speedup");
    for (const QuantRow &r : quant_rows)
        std::printf("%-8d %14.0f %14.0f %7.2fx\n", r.bits,
                    r.float_cached_ns, r.quant_ns,
                    r.float_cached_ns / r.quant_ns);
    std::printf("mean quantized-forward speedup: %.2fx\n", quant_speedup);

    // --- Integer GEMM kernel throughput ----------------------------
    int gm = fast ? 128 : 256;
    Rng grng(31);
    std::vector<int16_t> ia(static_cast<size_t>(gm) * gm);
    std::vector<uint16_t> ib(static_cast<size_t>(gm) * gm);
    for (auto &v : ia)
        v = static_cast<int16_t>(grng.uniformInt(-127, 127));
    for (auto &v : ib)
        v = static_cast<uint16_t>(grng.uniformInt(0, 255));
    std::vector<int64_t> ic(static_cast<size_t>(gm) * gm);
    double igemm_ns = timeNs(
        [&] {
            gemm::igemmTransB(gm, gm, gm, ia.data(), gm, ib.data(), gm,
                              ic.data(), gm, 8, 8);
        },
        min_seconds);
    double igemm_gops = 2.0 * gm * gm * gm / igemm_ns;
    Tensor fa = Tensor::randn({gm, gm}, grng);
    Tensor fb = Tensor::randn({gm, gm}, grng);
    Tensor fc({gm, gm});
    double sgemm_ns = timeNs(
        [&] {
            gemm::sgemm(gemm::Backend::Blocked, false, true, gm, gm, gm,
                        fa.data(), gm, fb.data(), gm, fc.data(), gm);
        },
        min_seconds);
    double sgemm_gflops = 2.0 * gm * gm * gm / sgemm_ns;
    std::printf("\nint16 igemm %dx%dx%d: %.0f ns  %.1f GOPS "
                "(blocked sgemm: %.1f GFLOP/s)\n",
                gm, gm, gm, igemm_ns, igemm_gops, sgemm_gflops);

    // --- Accelerator sweep wall-clock: serial vs thread pool -------
    Accelerator ours(AcceleratorKind::TwoInOne,
                     Accelerator::defaultAreaBudget(),
                     TechModel::defaults());
    NetworkWorkload workload = workloads::resNet18Cifar(1);
    PrecisionSet sweep_set = PrecisionSet::rps4to16();
    double sweep_serial_ns = timeNs(
        [&] {
            ThreadPool::ScopedSerial guard;
            ours.sweep(workload, sweep_set);
        },
        min_seconds);
    double sweep_parallel_ns =
        timeNs([&] { ours.sweep(workload, sweep_set); }, min_seconds);
    std::printf("\n%-24s %14s %14s %8s\n", "accel sweep", "serial_ns",
                "parallel_ns", "speedup");
    std::printf("%-24s %14.0f %14.0f %7.2fx\n", "resnet18c x rps4to16",
                sweep_serial_ns, sweep_parallel_ns,
                sweep_serial_ns / sweep_parallel_ns);

    // --- JSON -------------------------------------------------------
    std::ofstream out("BENCH_rps.json");
    out << "{\n  \"meta\": {\"threads\": "
        << ThreadPool::global().threads() << ", \"fast\": "
        << (fast ? "true" : "false")
        << ", \"model\": \"preact_mini\", \"precision_set\": \""
        << set.name() << "\", \"cache_bytes\": " << engine.cacheBytes()
        << "},\n";
    out << "  \"switch\": {\"uncached_ns\": " << jsonNum(uncached_switch_ns)
        << ", \"cached_ns\": " << jsonNum(cached_switch_ns)
        << ", \"speedup\": " << jsonNum(switch_speedup) << "},\n";
    out << "  \"forward\": [\n";
    for (size_t i = 0; i < fwd_rows.size(); ++i) {
        const ForwardRow &r = fwd_rows[i];
        out << "    {\"bits\": " << r.bits << ", \"uncached_ns\": "
            << jsonNum(r.uncached_ns) << ", \"cached_ns\": "
            << jsonNum(r.cached_ns) << ", \"speedup\": "
            << jsonNum(r.uncached_ns / r.cached_ns) << "}"
            << (i + 1 < fwd_rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n";
    out << "  \"quant_forward\": [\n";
    for (size_t i = 0; i < quant_rows.size(); ++i) {
        const QuantRow &r = quant_rows[i];
        out << "    {\"bits\": " << r.bits << ", \"float_cached_ns\": "
            << jsonNum(r.float_cached_ns) << ", \"quant_ns\": "
            << jsonNum(r.quant_ns) << ", \"speedup\": "
            << jsonNum(r.float_cached_ns / r.quant_ns) << "}"
            << (i + 1 < quant_rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n";
    out << "  \"quant_forward_speedup\": " << jsonNum(quant_speedup)
        << ",\n";
    out << "  \"int_gemm\": {\"m\": " << gm << ", \"n\": " << gm
        << ", \"k\": " << gm << ", \"bits\": 8, \"ns\": "
        << jsonNum(igemm_ns) << ", \"gops\": " << jsonNum(igemm_gops)
        << ", \"sgemm_ns\": " << jsonNum(sgemm_ns)
        << ", \"sgemm_gflops\": " << jsonNum(sgemm_gflops) << "},\n";
    out << "  \"sweep\": {\"serial_ns\": " << jsonNum(sweep_serial_ns)
        << ", \"parallel_ns\": " << jsonNum(sweep_parallel_ns)
        << ", \"speedup\": "
        << jsonNum(sweep_serial_ns / sweep_parallel_ns) << "},\n";
    out << "  \"bit_identical\": " << (bit_identical ? "true" : "false")
        << "\n}\n";
    out.close();
    std::cout << "\nwrote BENCH_rps.json\n";

    if (!bit_identical) {
        std::cerr << "FAIL: cached forward diverged from the uncached "
                     "fake-quant path\n";
        return 1;
    }
    if (switch_speedup < 10.0) {
        std::cerr << "FAIL: cached precision switch speedup "
                  << switch_speedup << "x is below the 10x floor\n";
        return 1;
    }
    if (quant_speedup < 1.3) {
        std::cerr << "FAIL: calibrated quantized forward speedup "
                  << quant_speedup
                  << "x is below the 1.3x acceptance floor\n";
        return 1;
    }
    return 0;
}
