/**
 * @file
 * RPS inference-engine microbenchmark (ISSUE 2).
 *
 * Measures the cost of a precision switch with and without the
 * RpsEngine per-precision weight cache, the cached vs uncached
 * forward pass, and the accelerator per-layer sweep wall-clock with
 * and without the thread pool — and verifies that the cached forward
 * is bit-identical to the from-scratch fake-quant path at every
 * candidate in rps4to16(). Writes BENCH_rps.json so the trajectory is
 * tracked per PR.
 *
 * JSON schema (times are mean wall ns per operation):
 *   meta:    { threads, fast, model, precision_set, cache_bytes }
 *   switch:  { uncached_ns, cached_ns, speedup }   (one full
 *            precision switch, averaged over the candidate set)
 *   forward: [ { bits, uncached_ns, cached_ns, speedup } ]
 *   quant_forward: [ { bits, float_cached_ns, quant_ns, speedup } ]
 *            (calibrated static-scale integer forward vs the cached
 *            dynamic float fake-quant forward — ISSUE 3)
 *   quant_forward_speedup: mean of the per-bits speedups
 *   plan_forward: [ { bits, legacy_ns, plan_ns, speedup } ]
 *            (the compiled allocation-free execution plan vs the
 *            PR 3 per-layer quantized loop — ISSUE 4)
 *   plan_forward_speedup: mean of the per-bits speedups
 *   serve_qps: { serial_qps, parallel_qps, scaling, p50_us, p99_us }
 *            (Session-fronted batched RPS serving, one thread vs the
 *            full pool — ISSUE 4)
 *   session_cold_start: { eager_ns, lazy_ns, speedup }
 *            (serving-runtime construction with eager per-candidate
 *            plan warm-up vs lazy compilation — ISSUE 5)
 *   int_gemm: { m, n, k, bits, ns, gops, sgemm_ns, sgemm_gflops,
 *               isa_tier }
 *            (the packed 8-bit kernel vs the blocked float kernel)
 *   sweep:   { serial_ns, parallel_ns, speedup }   (accelerator
 *            layers x precisions sweep, resnet18-cifar x rps4to16)
 *   bit_identical: true/false
 *
 * Exits non-zero when the cached forward is not bit-identical, the
 * cached switch speedup falls below the 10x acceptance floor, the
 * calibrated quantized forward is not >= 1.3x the cached float
 * forward (ISSUE 3), the plan forward is not >= 1.15x the legacy
 * quantized forward, (with >= 4 pool threads on >= 4 hardware
 * cores) serving throughput does not scale >= 1.5x from one thread to
 * the pool (ISSUE 4), or — on machines whose dispatched ISA tier is
 * avx512vnni — the packed 8-bit GEMM does not reach the blocked float
 * GFLOP/s on the same shape (ISSUE 8: the quantized path must win on
 * compute, not just memory traffic).
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "accel/accelerator.hh"
#include "bench_util.hh"
#include "common/thread_pool.hh"
#include "quant/calibration.hh"
#include "quant/rps_engine.hh"
#include "serve/runtime.hh"
#include "serve/session.hh"
#include "tensor/gemm.hh"
#include "workloads/model_library.hh"

namespace {

using namespace twoinone;
using Clock = std::chrono::steady_clock;

/** Mean wall ns/op of fn, run repeatedly for a minimum budget. */
double
timeNs(const std::function<void()> &fn, double min_seconds)
{
    fn(); // warm-up
    int64_t reps = 0;
    auto start = Clock::now();
    double elapsed = 0.0;
    do {
        fn();
        ++reps;
        elapsed = std::chrono::duration<double>(Clock::now() - start)
                      .count();
    } while (elapsed < min_seconds || reps < 3);
    return elapsed * 1e9 / static_cast<double>(reps);
}

struct ForwardRow
{
    int bits;
    double uncached_ns = 0.0;
    double cached_ns = 0.0;
};

std::string
jsonNum(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f", v);
    return buf;
}

} // namespace

int
main()
{
    bool fast = bench::fastMode();
    double min_seconds = fast ? 0.05 : 0.25;

    bench::banner("RPS engine microbenchmarks (cached vs uncached "
                  "precision switching)");
    std::cout << "threads=" << ThreadPool::global().threads()
              << (fast ? " (fast mode)" : "") << "\n\n";

    Rng rng(2024);
    ModelConfig mcfg;
    mcfg.baseWidth = fast ? 8 : 16;
    Network net = preActResNetMini(mcfg, rng);
    PrecisionSet set = net.precisionSet();
    Rng data_rng(7);
    Tensor x = Tensor::uniform({fast ? 4 : 8, 3, 8, 8}, data_rng, 0.0f,
                               1.0f);

    RpsEngine engine(net);
    std::vector<WeightQuantizedLayer *> wlayers =
        net.weightQuantizedLayers();
    size_t weight_scalars = 0;
    for (WeightQuantizedLayer *l : wlayers)
        weight_scalars += l->masterWeight().size();
    std::cout << "model=preact_mini  quant_layers=" << wlayers.size()
              << "  weight_scalars=" << weight_scalars
              << "  cache=" << engine.cacheBytes() << " bytes\n";

    // Shared warm-up: install every candidate once (materializing the
    // lazily built float views) and touch both forward paths, so no
    // timed section below pays first-touch cache builds.
    for (int bits : set.bits()) {
        engine.setPrecision(bits);
        net.forward(x, false);
        net.forwardQuantized(x);
    }

    // --- Precision switch: uncached re-quantization vs cache install.
    // An uncached switch pays one fakeQuantSymmetric pass per weight
    // tensor (what the next forward would run); a cached switch
    // installs the pre-quantized entries. Cycle the candidate set so
    // both paths average over the same precisions.
    size_t cursor = 0;
    double uncached_switch_ns = timeNs(
        [&] {
            int bits = set.bits()[cursor++ % set.size()];
            for (WeightQuantizedLayer *l : wlayers) {
                QuantResult r = LinearQuantizer::fakeQuantSymmetric(
                    l->masterWeight(), bits);
                (void)r;
            }
        },
        min_seconds);
    cursor = 0;
    double cached_switch_ns = timeNs(
        [&] { engine.setPrecision(set.bits()[cursor++ % set.size()]); },
        min_seconds);
    double switch_speedup = uncached_switch_ns / cached_switch_ns;
    std::printf("\n%-24s %14s %14s %8s\n", "precision switch",
                "uncached_ns", "cached_ns", "speedup");
    std::printf("%-24s %14.0f %14.0f %7.1fx\n", "avg over set",
                uncached_switch_ns, cached_switch_ns, switch_speedup);

    // --- Forward pass + bit-identity per candidate -----------------
    bool bit_identical = true;
    std::vector<ForwardRow> fwd_rows;
    for (int bits : set.bits()) {
        ForwardRow row;
        row.bits = bits;

        engine.detach();
        net.setPrecision(bits);
        Tensor y_ref = net.forward(x, false);
        row.uncached_ns =
            timeNs([&] { net.forward(x, false); }, min_seconds);

        Tensor y_cached = engine.forwardAt(bits, x);
        row.cached_ns =
            timeNs([&] { net.forward(x, false); }, min_seconds);

        if (!y_ref.sameShape(y_cached)) {
            bit_identical = false;
        } else {
            for (size_t i = 0; i < y_ref.size(); ++i) {
                if (y_ref[i] != y_cached[i]) {
                    bit_identical = false;
                    break;
                }
            }
        }
        fwd_rows.push_back(row);
    }
    std::printf("\n%-8s %14s %14s %8s\n", "forward", "uncached_ns",
                "cached_ns", "speedup");
    for (const ForwardRow &r : fwd_rows)
        std::printf("%-8d %14.0f %14.0f %7.2fx\n", r.bits, r.uncached_ns,
                    r.cached_ns, r.uncached_ns / r.cached_ns);
    std::cout << "cached forward bit-identical: "
              << (bit_identical ? "yes" : "NO") << "\n";

    // --- Quantized forward: calibrated static scales + int codes ---
    // The float rows above are the PR 2 cached path (dynamic
    // activation fake-quant); the quantized forward runs the same
    // cached codes through the integer GEMM kernels with calibrated
    // static activation scales — no range reduction, no fake-quant.
    Calibrator cal(net);
    cal.calibrate({x});
    struct QuantRow
    {
        int bits;
        double float_cached_ns = 0.0;
        double quant_ns = 0.0;
    };
    std::vector<QuantRow> quant_rows;
    double speedup_sum = 0.0;
    for (size_t i = 0; i < fwd_rows.size(); ++i) {
        QuantRow row;
        row.bits = fwd_rows[i].bits;
        row.float_cached_ns = fwd_rows[i].cached_ns;
        engine.setPrecision(row.bits);
        row.quant_ns =
            timeNs([&] { net.forwardQuantized(x); }, min_seconds);
        speedup_sum += row.float_cached_ns / row.quant_ns;
        quant_rows.push_back(row);
    }
    double quant_speedup =
        speedup_sum / static_cast<double>(quant_rows.size());
    std::printf("\n%-8s %14s %14s %8s\n", "quantfwd", "float_cached",
                "quant_ns", "speedup");
    for (const QuantRow &r : quant_rows)
        std::printf("%-8d %14.0f %14.0f %7.2fx\n", r.bits,
                    r.float_cached_ns, r.quant_ns,
                    r.float_cached_ns / r.quant_ns);
    std::printf("mean quantized-forward speedup: %.2fx\n", quant_speedup);

    // --- Compiled execution plan vs the per-layer quantized loop ---
    // Same precision state and calibrated scales as the quant rows:
    // the plan runs the identical kernels through one allocation-free
    // dispatch loop over the preallocated arena (ISSUE 4 tentpole).
    std::unique_ptr<serve::ExecutionPlan> qplan =
        net.compile(set, serve::PlanMode::Quantized, x.shape());
    struct PlanRow
    {
        int bits;
        double legacy_ns = 0.0;
        double plan_ns = 0.0;
    };
    std::vector<PlanRow> plan_rows;
    double plan_speedup_sum = 0.0;
    for (const QuantRow &q : quant_rows) {
        PlanRow row;
        row.bits = q.bits;
        row.legacy_ns = q.quant_ns;
        engine.setPrecision(row.bits);
        row.plan_ns = timeNs([&] { qplan->run(x); }, min_seconds);
        plan_speedup_sum += row.legacy_ns / row.plan_ns;
        plan_rows.push_back(row);
    }
    double plan_speedup =
        plan_speedup_sum / static_cast<double>(plan_rows.size());
    std::printf("\n%-8s %14s %14s %8s\n", "planfwd", "legacy_ns",
                "plan_ns", "speedup");
    for (const PlanRow &r : plan_rows)
        std::printf("%-8d %14.0f %14.0f %7.2fx\n", r.bits, r.legacy_ns,
                    r.plan_ns, r.legacy_ns / r.plan_ns);
    std::printf("mean plan-forward speedup: %.2fx  (%zu steps, "
                "%zu KiB arena)\n",
                plan_speedup, qplan->numSteps(),
                qplan->arenaBytes() / 1024);

    // --- Batched RPS serving throughput ----------------------------
    // The Session facade wires the serving stack (plans + runtime)
    // around the shared net/engine; requests pack into batches, one
    // random precision per batch from the engine cache, micro-batches
    // sharded across the pool. Serial (ScopedSerial) vs the full pool
    // measures thread scaling of the serving datapath. Eager plan
    // warm-up: this section measures steady-state throughput, not
    // cold start (that is session_cold_start below).
    int serve_rows_per_req = fast ? 4 : 8;
    int serve_requests = fast ? 24 : 48;
    serve::ServeConfig scfg;
    scfg.maxBatch = serve_rows_per_req * 4;
    scfg.microBatch = serve_rows_per_req;
    auto serve_qps = [&](bool serial) {
        SessionConfig sess_cfg;
        sess_cfg.serving = scfg;
        sess_cfg.serving.lazyPlanWarmup = false;
        sess_cfg.inputShape = {3, 8, 8};
        Session sess = Session::attach(net, sess_cfg);
        Rng req_rng(17);
        for (int i = 0; i < serve_requests; ++i) {
            sess.submit(Tensor::uniform({serve_rows_per_req, 3, 8, 8},
                                        req_rng, 0.0f, 1.0f));
        }
        if (serial) {
            ThreadPool::ScopedSerial guard;
            sess.drain();
        } else {
            sess.drain();
        }
        return sess.stats();
    };
    serve::ServeStats serve_serial = serve_qps(true);
    serve::ServeStats serve_parallel = serve_qps(false);
    double serve_scaling = serve_serial.qps > 0.0
                               ? serve_parallel.qps / serve_serial.qps
                               : 0.0;
    std::printf("\n%-24s %14s %14s %8s\n", "serving (rows/s)",
                "serial_qps", "parallel_qps", "scaling");
    std::printf("%-24s %14.0f %14.0f %7.2fx\n", "rps batches",
                serve_serial.qps, serve_parallel.qps, serve_scaling);
    std::printf("parallel latency: p50 %.0f us  p99 %.0f us\n",
                serve_parallel.p50Us, serve_parallel.p99Us);

    // --- Session cold start: eager vs lazy plan compilation --------
    // Standing a serving runtime up compiles one plan replica per
    // worker; eager warm-up dry-runs every candidate per replica,
    // lazy compilation (SessionConfig default) runs one structural
    // pass and lets each candidate size its buffers on first serve.
    auto cold_start = [&](bool lazy) {
        serve::ServeConfig cs = scfg;
        cs.lazyPlanWarmup = lazy;
        serve::ServingRuntime srv(net, engine, {3, 8, 8}, cs);
        (void)srv;
    };
    double cold_eager_ns =
        timeNs([&] { cold_start(false); }, min_seconds);
    double cold_lazy_ns = timeNs([&] { cold_start(true); }, min_seconds);
    double cold_speedup = cold_eager_ns / cold_lazy_ns;
    std::printf("\n%-24s %14s %14s %8s\n", "session cold start",
                "eager_ns", "lazy_ns", "speedup");
    std::printf("%-24s %14.0f %14.0f %7.2fx\n", "runtime construction",
                cold_eager_ns, cold_lazy_ns, cold_speedup);

    // --- Integer GEMM kernel throughput ----------------------------
    // The packed 8-bit kernel (tile-ordered weights + runtime ISA
    // dispatch) against the blocked float SGEMM on the same shape —
    // the paper's core claim is that low-precision execution must win
    // on compute, not just memory traffic (ISSUE 8 tentpole gate).
    int gm = fast ? 128 : 256;
    Rng grng(31);
    std::vector<int32_t> iw(static_cast<size_t>(gm) * gm);
    std::vector<uint8_t> ib(static_cast<size_t>(gm) * gm);
    for (auto &v : iw)
        v = grng.uniformInt(-127, 127);
    for (auto &v : ib)
        v = static_cast<uint8_t>(grng.uniformInt(0, 255));
    gemm::PackedIntWeights ipw;
    gemm::packWeights(iw.data(), gm, gm, 8, ipw);
    std::vector<int64_t> ic(static_cast<size_t>(gm) * gm);
    double igemm_ns = timeNs(
        [&] {
            gemm::igemmPackedTransB(ipw, gm, ib.data(), gm, ic.data(),
                                    gm, 8);
        },
        min_seconds);
    double igemm_gops = 2.0 * gm * gm * gm / igemm_ns;
    Tensor fa = Tensor::randn({gm, gm}, grng);
    Tensor fb = Tensor::randn({gm, gm}, grng);
    Tensor fc({gm, gm});
    double sgemm_ns = timeNs(
        [&] {
            gemm::sgemm(gemm::Backend::Blocked, false, true, gm, gm, gm,
                        fa.data(), gm, fb.data(), gm, fc.data(), gm);
        },
        min_seconds);
    double sgemm_gflops = 2.0 * gm * gm * gm / sgemm_ns;
    const char *isa_tier = gemm::isaTierName(gemm::activeIsaTier());
    std::printf("\npacked int8 gemm %dx%dx%d [%s]: %.0f ns  %.1f GOPS "
                "(blocked sgemm: %.1f GFLOP/s)\n",
                gm, gm, gm, isa_tier, igemm_ns, igemm_gops,
                sgemm_gflops);

    // --- Accelerator sweep wall-clock: serial vs thread pool -------
    Accelerator ours(AcceleratorKind::TwoInOne,
                     Accelerator::defaultAreaBudget(),
                     TechModel::defaults());
    NetworkWorkload workload = workloads::resNet18Cifar(1);
    PrecisionSet sweep_set = PrecisionSet::rps4to16();
    double sweep_serial_ns = timeNs(
        [&] {
            ThreadPool::ScopedSerial guard;
            ours.sweep(workload, sweep_set);
        },
        min_seconds);
    double sweep_parallel_ns =
        timeNs([&] { ours.sweep(workload, sweep_set); }, min_seconds);
    std::printf("\n%-24s %14s %14s %8s\n", "accel sweep", "serial_ns",
                "parallel_ns", "speedup");
    std::printf("%-24s %14.0f %14.0f %7.2fx\n", "resnet18c x rps4to16",
                sweep_serial_ns, sweep_parallel_ns,
                sweep_serial_ns / sweep_parallel_ns);

    // --- JSON -------------------------------------------------------
    std::ofstream out("BENCH_rps.json");
    out << "{\n  \"meta\": {\"threads\": "
        << ThreadPool::global().threads() << ", \"fast\": "
        << (fast ? "true" : "false")
        << ", \"model\": \"preact_mini\", \"precision_set\": \""
        << set.name() << "\", \"isa_tier\": \"" << isa_tier
        << "\", \"cache_bytes\": " << engine.cacheBytes() << "},\n";
    out << "  \"switch\": {\"uncached_ns\": " << jsonNum(uncached_switch_ns)
        << ", \"cached_ns\": " << jsonNum(cached_switch_ns)
        << ", \"speedup\": " << jsonNum(switch_speedup) << "},\n";
    out << "  \"forward\": [\n";
    for (size_t i = 0; i < fwd_rows.size(); ++i) {
        const ForwardRow &r = fwd_rows[i];
        out << "    {\"bits\": " << r.bits << ", \"uncached_ns\": "
            << jsonNum(r.uncached_ns) << ", \"cached_ns\": "
            << jsonNum(r.cached_ns) << ", \"speedup\": "
            << jsonNum(r.uncached_ns / r.cached_ns) << "}"
            << (i + 1 < fwd_rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n";
    out << "  \"quant_forward\": [\n";
    for (size_t i = 0; i < quant_rows.size(); ++i) {
        const QuantRow &r = quant_rows[i];
        out << "    {\"bits\": " << r.bits << ", \"float_cached_ns\": "
            << jsonNum(r.float_cached_ns) << ", \"quant_ns\": "
            << jsonNum(r.quant_ns) << ", \"speedup\": "
            << jsonNum(r.float_cached_ns / r.quant_ns) << "}"
            << (i + 1 < quant_rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n";
    out << "  \"quant_forward_speedup\": " << jsonNum(quant_speedup)
        << ",\n";
    out << "  \"plan_forward\": [\n";
    for (size_t i = 0; i < plan_rows.size(); ++i) {
        const PlanRow &r = plan_rows[i];
        out << "    {\"bits\": " << r.bits << ", \"legacy_ns\": "
            << jsonNum(r.legacy_ns) << ", \"plan_ns\": "
            << jsonNum(r.plan_ns) << ", \"speedup\": "
            << jsonNum(r.legacy_ns / r.plan_ns) << "}"
            << (i + 1 < plan_rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n";
    out << "  \"plan_forward_speedup\": " << jsonNum(plan_speedup)
        << ",\n";
    out << "  \"serve_qps\": {\"serial_qps\": "
        << jsonNum(serve_serial.qps) << ", \"parallel_qps\": "
        << jsonNum(serve_parallel.qps) << ", \"scaling\": "
        << jsonNum(serve_scaling) << ", \"p50_us\": "
        << jsonNum(serve_parallel.p50Us) << ", \"p99_us\": "
        << jsonNum(serve_parallel.p99Us) << "},\n";
    out << "  \"session_cold_start\": {\"eager_ns\": "
        << jsonNum(cold_eager_ns) << ", \"lazy_ns\": "
        << jsonNum(cold_lazy_ns) << ", \"speedup\": "
        << jsonNum(cold_speedup) << "},\n";
    out << "  \"int_gemm\": {\"m\": " << gm << ", \"n\": " << gm
        << ", \"k\": " << gm << ", \"bits\": 8, \"ns\": "
        << jsonNum(igemm_ns) << ", \"gops\": " << jsonNum(igemm_gops)
        << ", \"sgemm_ns\": " << jsonNum(sgemm_ns)
        << ", \"sgemm_gflops\": " << jsonNum(sgemm_gflops)
        << ", \"isa_tier\": \"" << isa_tier << "\"},\n";
    out << "  \"sweep\": {\"serial_ns\": " << jsonNum(sweep_serial_ns)
        << ", \"parallel_ns\": " << jsonNum(sweep_parallel_ns)
        << ", \"speedup\": "
        << jsonNum(sweep_serial_ns / sweep_parallel_ns) << "},\n";
    out << "  \"bit_identical\": " << (bit_identical ? "true" : "false")
        << "\n}\n";
    out.close();
    std::cout << "\nwrote BENCH_rps.json\n";

    if (!bit_identical) {
        std::cerr << "FAIL: cached forward diverged from the uncached "
                     "fake-quant path\n";
        return 1;
    }
    if (switch_speedup < 10.0) {
        std::cerr << "FAIL: cached precision switch speedup "
                  << switch_speedup << "x is below the 10x floor\n";
        return 1;
    }
    if (quant_speedup < 1.3) {
        std::cerr << "FAIL: calibrated quantized forward speedup "
                  << quant_speedup
                  << "x is below the 1.3x acceptance floor\n";
        return 1;
    }
    if (plan_speedup < 1.15) {
        std::cerr << "FAIL: compiled plan forward speedup "
                  << plan_speedup
                  << "x is below the 1.15x acceptance floor\n";
        return 1;
    }
    // The ALU-throughput inversion gate only binds where the VNNI
    // tier dispatched: AVX2/scalar machines still run correct packed
    // kernels but cannot be asked to outrun their own float SGEMM.
    if (gemm::activeIsaTier() == gemm::IsaTier::Avx512Vnni &&
        igemm_gops < sgemm_gflops) {
        std::cerr << "FAIL: packed int8 GEMM " << igemm_gops
                  << " GOPS is below the blocked float "
                  << sgemm_gflops << " GFLOP/s on the same shape\n";
        return 1;
    }
    // Thread scaling needs real cores behind the pool: a pool
    // oversubscribed onto fewer physical CPUs cannot express it.
    unsigned hw = std::thread::hardware_concurrency();
    if (ThreadPool::global().threads() >= 4 && hw >= 4 &&
        serve_scaling < 1.5) {
        std::cerr << "FAIL: serving throughput scaling "
                  << serve_scaling << "x (1 -> "
                  << ThreadPool::global().threads()
                  << " threads) is below the 1.5x acceptance floor\n";
        return 1;
    }
    return 0;
}
