/**
 * @file
 * Paper Sec. 4.3.2: throughput/area of the 2-in-1 Accelerator vs the
 * robustness-aware DNNGuard on AlexNet, VGG-16 and ResNet-50, with
 * the RPS precision sets 4~8 and 4~16 (ours averages FPS over the
 * set). Paper reference: 36.5x/17.9x (AlexNet), 19.3x/9.5x (VGG-16),
 * 12.8x/6.4x (ResNet-50).
 */

#include "accel/dnnguard.hh"
#include "bench_util.hh"
#include "optimizer/evolutionary.hh"
#include "workloads/model_library.hh"

using namespace twoinone;

namespace {

double
avgFpsPerArea(const Accelerator &accel, const NetworkWorkload &net,
              const PrecisionSet &set)
{
    EvoConfig cfg;
    cfg.populationSize = bench::fastMode() ? 8 : 16;
    cfg.totalCycles = bench::fastMode() ? 2 : 5;
    cfg.objective = Objective::Latency;
    cfg.seed = 555;
    double sum = 0.0;
    for (int q : set.bits()) {
        std::vector<Dataflow> dfs =
            optimizeNetworkDataflows(accel, net, q, q, cfg);
        sum += accel.predictor()
                   .predictNetwork(net, q, q, dfs)
                   .fps(TechModel::defaults().clockGhz, 1);
    }
    return sum / static_cast<double>(set.size()) /
           accel.macArrayArea();
}

} // namespace

int
main()
{
    bench::banner("Sec. 4.3.2 — throughput/area vs DNNGuard");
    const TechModel &tech = TechModel::defaults();
    double budget = Accelerator::defaultAreaBudget();
    Accelerator ours(AcceleratorKind::TwoInOne, budget, tech);
    // DNNGuard runs a ResNet-18 detection network next to every
    // inference (its paper's configuration).
    DnnGuardModel guard(budget, tech, workloads::resNet18ImageNet());

    PrecisionSet low = PrecisionSet::rps4to8();
    PrecisionSet full = PrecisionSet::rps4to16();

    TablePrinter table;
    table.header({"network", "ours 4~8 / DNNGuard",
                  "ours 4~16 / DNNGuard", "paper 4~8", "paper 4~16"});
    struct Ref
    {
        NetworkWorkload net;
        const char *p48;
        const char *p416;
    };
    const Ref rows[] = {
        {workloads::alexNet(), "36.5x", "17.9x"},
        {workloads::vgg16(), "19.3x", "9.5x"},
        {workloads::resNet50(), "12.8x", "6.4x"},
    };
    for (const Ref &r : rows) {
        double g = guard.fpsPerArea(r.net, tech.clockGhz);
        double o_low = avgFpsPerArea(ours, r.net, low);
        double o_full = avgFpsPerArea(ours, r.net, full);
        table.row({r.net.name, formatFixed(o_low / g, 1) + "x",
                   formatFixed(o_full / g, 1) + "x", r.p48, r.p416});
    }
    table.print();
    std::cout << "expected shape: ours >> DNNGuard everywhere; the "
                 "gap is largest on AlexNet (smallest target, so the "
                 "fixed detector overhead dominates) and the 4~8 set "
                 "beats 4~16\n";
    return 0;
}
