#!/usr/bin/env python3
"""Diff bench JSONs against the committed baseline.

Fails (exit 1) when a watched key regresses by more than the tolerance
(default 20%, ISSUE 3 satellite). Keys are dotted paths into the JSON;
a path segment of the form ``name=value`` selects the matching element
of an array of objects (e.g. ``gemm[name=square256].blocked_gflops``).
Every watched key is higher-is-better (speedups and throughputs);
latencies are watched through their speedup ratios, which are far more
stable across machines than raw nanoseconds.

Usage:
  check_bench_regression.py CURRENT BASELINE KEY [KEY...]
      [--tolerance 0.2]

The tolerance can also be set via TWOINONE_BENCH_TOLERANCE.
"""

import argparse
import json
import os
import re
import sys


def resolve(doc, path):
    node = doc
    for part in path.split("."):
        m = re.match(r"^(\w+)\[(\w+)=([^\]]+)\]$", part)
        if m:
            key, field, value = m.groups()
            arr = node[key]
            matches = [e for e in arr if str(e.get(field)) == value]
            if not matches:
                raise KeyError(f"no {field}={value} element in {key}")
            node = matches[0]
        else:
            node = node[part]
    return float(node)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("current")
    ap.add_argument("baseline")
    ap.add_argument("keys", nargs="+")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("TWOINONE_BENCH_TOLERANCE", "0.2")),
        help="allowed fractional regression (default 0.2 = 20%%)",
    )
    args = ap.parse_args()

    with open(args.current) as f:
        current = json.load(f)
    with open(args.baseline) as f:
        baseline = json.load(f)

    failed = False
    for key in args.keys:
        try:
            cur = resolve(current, key)
            base = resolve(baseline, key)
        except KeyError as e:
            print(f"FAIL  {key}: missing key ({e})")
            failed = True
            continue
        if base <= 0:
            print(f"skip  {key}: non-positive baseline {base}")
            continue
        ratio = cur / base
        status = "ok  "
        if ratio < 1.0 - args.tolerance:
            status = "FAIL"
            failed = True
        print(
            f"{status}  {key}: current={cur:.2f} baseline={base:.2f} "
            f"ratio={ratio:.2f} (floor {1.0 - args.tolerance:.2f})"
        )

    if failed:
        print(
            f"bench regression beyond {args.tolerance:.0%} tolerance "
            "(override with TWOINONE_BENCH_TOLERANCE)"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
