#!/usr/bin/env python3
"""Diff bench JSONs against the committed baseline.

Fails (exit 1) when a watched key regresses by more than the tolerance
(default 20%, ISSUE 3 satellite). Keys are dotted paths into the JSON;
a path segment of the form ``name=value`` selects the matching element
of an array of objects (e.g. ``gemm[name=square256].blocked_gflops``).
Every watched key is higher-is-better (speedups and throughputs);
latencies are watched through their speedup ratios, which are far more
stable across machines than raw nanoseconds.

A key missing on either side is reported with the exact path segment
that failed to resolve and the keys that *are* present at that node,
plus which side (current run vs committed baseline) is at fault and
what to do about it — never a KeyError stack trace. Unreadable or
malformed input files exit 2 with the filename and parse position.

Usage:
  check_bench_regression.py CURRENT BASELINE KEY [KEY...]
      [--tolerance 0.2]

The tolerance can also be set via TWOINONE_BENCH_TOLERANCE.
"""

import argparse
import json
import os
import re
import sys


class ResolveError(Exception):
    """A dotted key failed to resolve; message says where and why."""


def available(node):
    if isinstance(node, dict):
        keys = ", ".join(sorted(node.keys())) or "<empty object>"
        return f"available keys: {keys}"
    if isinstance(node, list):
        return f"node is an array of {len(node)} elements"
    return f"node is a {type(node).__name__} leaf"


def resolve(doc, path):
    node = doc
    walked = []
    for part in path.split("."):
        here = ".".join(walked) or "<root>"
        m = re.match(r"^(\w+)\[(\w+)=([^\]]+)\]$", part)
        if m:
            key, field, value = m.groups()
            if not isinstance(node, dict) or key not in node:
                raise ResolveError(
                    f"no key '{key}' at '{here}' ({available(node)})"
                )
            arr = node[key]
            if not isinstance(arr, list):
                raise ResolveError(
                    f"'{key}' at '{here}' is not an array "
                    f"({available(arr)})"
                )
            matches = [e for e in arr if str(e.get(field)) == value]
            if not matches:
                seen = ", ".join(
                    sorted(str(e.get(field)) for e in arr)
                ) or "<none>"
                raise ResolveError(
                    f"no {field}={value} element in '{key}' at "
                    f"'{here}' (present: {seen})"
                )
            node = matches[0]
        else:
            if not isinstance(node, dict) or part not in node:
                raise ResolveError(
                    f"no key '{part}' at '{here}' ({available(node)})"
                )
            node = node[part]
        walked.append(part)
    try:
        return float(node)
    except (TypeError, ValueError):
        raise ResolveError(
            f"'{path}' is not a number ({available(node)})"
        )


def load_json(path, role):
    try:
        with open(path) as f:
            return json.load(f)
    except OSError as e:
        print(f"error: cannot read {role} file {path}: {e.strerror}")
        sys.exit(2)
    except json.JSONDecodeError as e:
        print(
            f"error: {role} file {path} is not valid JSON: "
            f"{e.msg} at line {e.lineno}, column {e.colno}"
        )
        sys.exit(2)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("current")
    ap.add_argument("baseline")
    ap.add_argument("keys", nargs="+")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("TWOINONE_BENCH_TOLERANCE", "0.2")),
        help="allowed fractional regression (default 0.2 = 20%%)",
    )
    args = ap.parse_args()

    current = load_json(args.current, "current bench")
    baseline = load_json(args.baseline, "baseline")

    failed = False
    for key in args.keys:
        try:
            cur = resolve(current, key)
        except ResolveError as e:
            print(
                f"FAIL  {key}: missing from current bench output "
                f"({args.current}): {e} — the bench stopped emitting "
                "this key; fix the bench or drop it from the watch list"
            )
            failed = True
            continue
        try:
            base = resolve(baseline, key)
        except ResolveError as e:
            print(
                f"FAIL  {key}: missing from committed baseline "
                f"({args.baseline}): {e} — re-run the bench full-mode "
                "and commit the refreshed JSON to pick up the new key"
            )
            failed = True
            continue
        if base <= 0:
            print(f"skip  {key}: non-positive baseline {base}")
            continue
        ratio = cur / base
        status = "ok  "
        if ratio < 1.0 - args.tolerance:
            status = "FAIL"
            failed = True
        print(
            f"{status}  {key}: current={cur:.2f} baseline={base:.2f} "
            f"ratio={ratio:.2f} (floor {1.0 - args.tolerance:.2f})"
        )

    if failed:
        print(
            f"bench regression beyond {args.tolerance:.0%} tolerance "
            "(override with TWOINONE_BENCH_TOLERANCE)"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
